#include "sscor/pcap/pcap_writer.hpp"

#include <array>
#include <fstream>

#include "sscor/util/error.hpp"

namespace sscor::pcap {
namespace {

void store32(std::uint8_t* b, std::uint32_t v) {
  b[0] = static_cast<std::uint8_t>(v);
  b[1] = static_cast<std::uint8_t>(v >> 8);
  b[2] = static_cast<std::uint8_t>(v >> 16);
  b[3] = static_cast<std::uint8_t>(v >> 24);
}

void store16(std::uint8_t* b, std::uint16_t v) {
  b[0] = static_cast<std::uint8_t>(v);
  b[1] = static_cast<std::uint8_t>(v >> 8);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, LinkType link_type,
                       std::uint32_t snaplen)
    : link_type_(link_type), snaplen_(snaplen) {
  auto file = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!*file) throw IoError("cannot open pcap file for writing: " + path);
  owned_stream_ = std::move(file);
  stream_ = owned_stream_.get();
  write_global_header();
}

PcapWriter::PcapWriter(std::ostream& stream, LinkType link_type,
                       std::uint32_t snaplen)
    : stream_(&stream), link_type_(link_type), snaplen_(snaplen) {
  write_global_header();
}

void PcapWriter::write_global_header() {
  std::array<std::uint8_t, kGlobalHeaderBytes> raw{};
  store32(raw.data(), kMagicMicros);
  store16(raw.data() + 4, kVersionMajor);
  store16(raw.data() + 6, kVersionMinor);
  store32(raw.data() + 8, 0);   // thiszone
  store32(raw.data() + 12, 0);  // sigfigs
  store32(raw.data() + 16, snaplen_);
  store32(raw.data() + 20, static_cast<std::uint32_t>(link_type_));
  stream_->write(reinterpret_cast<const char*>(raw.data()),
                 static_cast<std::streamsize>(raw.size()));
  if (!*stream_) throw IoError("failed to write pcap global header");
}

void PcapWriter::write(const Record& record) {
  require(record.timestamp >= 0,
          "pcap stores unsigned timestamps; offset your epoch");
  const auto incl_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(record.data.size(), snaplen_));
  std::array<std::uint8_t, kRecordHeaderBytes> raw{};
  store32(raw.data(),
          static_cast<std::uint32_t>(record.timestamp / kMicrosPerSecond));
  store32(raw.data() + 4,
          static_cast<std::uint32_t>(record.timestamp % kMicrosPerSecond));
  store32(raw.data() + 8, incl_len);
  store32(raw.data() + 12, record.original_length != 0
                               ? record.original_length
                               : static_cast<std::uint32_t>(
                                     record.data.size()));
  stream_->write(reinterpret_cast<const char*>(raw.data()),
                 static_cast<std::streamsize>(raw.size()));
  stream_->write(reinterpret_cast<const char*>(record.data.data()),
                 static_cast<std::streamsize>(incl_len));
  if (!*stream_) throw IoError("failed to write pcap record");
  ++records_written_;
}

void PcapWriter::flush() { stream_->flush(); }

}  // namespace sscor::pcap
