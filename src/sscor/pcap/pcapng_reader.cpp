#include "sscor/pcap/pcapng_reader.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <limits>

#include "sscor/pcap/pcap_reader.hpp"
#include "sscor/util/error.hpp"

namespace sscor::pcap {
namespace {

constexpr std::size_t kMaxBlockBytes = 64 * 1024 * 1024;

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

}  // namespace

PcapngReader::PcapngReader(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) throw IoError("cannot open pcapng file: " + path);
  owned_stream_ = std::move(file);
  stream_ = owned_stream_.get();
}

PcapngReader::PcapngReader(std::istream& stream) : stream_(&stream) {}

std::uint32_t PcapngReader::load32(const std::uint8_t* b) const {
  std::uint32_t v;
  std::memcpy(&v, b, sizeof(v));
  // Files written on big-endian machines need a swap on little-endian
  // hosts (and vice versa); `swapped_` captures the mismatch directly.
  return swapped_ ? swap32(v) : v;
}

std::uint16_t PcapngReader::load16(const std::uint8_t* b) const {
  std::uint16_t v;
  std::memcpy(&v, b, sizeof(v));
  return swapped_ ? static_cast<std::uint16_t>((v << 8) | (v >> 8)) : v;
}

std::optional<Record> PcapngReader::next() {
  Record record;
  while (true) {
    if (!read_block(&record)) {
      return std::nullopt;  // clean end of file
    }
    if (record.data.empty() && record.original_length == 0) {
      continue;  // non-packet block; keep scanning
    }
    return record;
  }
}

bool PcapngReader::read_block(Record* out) {
  out->data.clear();
  out->original_length = 0;

  std::array<std::uint8_t, 8> head{};
  stream_->read(reinterpret_cast<char*>(head.data()),
                static_cast<std::streamsize>(head.size()));
  if (stream_->gcount() == 0) return false;
  if (stream_->gcount() != static_cast<std::streamsize>(head.size())) {
    throw IoError("truncated pcapng block header");
  }

  // The SHB's byte order is discovered from its magic, so its type code
  // (palindromic 0x0a0d0d0a) is readable either way.
  std::uint32_t raw_type;
  std::memcpy(&raw_type, head.data(), sizeof(raw_type));
  if (raw_type == kPcapngSectionHeader) {
    open_section(load32(head.data() + 4));
    return true;
  }
  // Input-dependent, so IoError (require() would blame the caller for what
  // is a malformed file).
  if (!in_section_) {
    throw IoError("pcapng data before any section header");
  }

  const std::uint32_t type = load32(head.data());
  const std::uint32_t total_length = load32(head.data() + 4);
  if (total_length < 12 || total_length % 4 != 0 ||
      total_length > kMaxBlockBytes) {
    throw IoError("implausible pcapng block length");
  }
  std::vector<std::uint8_t> body(total_length - 12);
  stream_->read(reinterpret_cast<char*>(body.data()),
                static_cast<std::streamsize>(body.size()));
  if (stream_->gcount() != static_cast<std::streamsize>(body.size())) {
    throw IoError("truncated pcapng block body");
  }
  std::array<std::uint8_t, 4> trailer{};
  stream_->read(reinterpret_cast<char*>(trailer.data()), 4);
  if (stream_->gcount() != 4 || load32(trailer.data()) != total_length) {
    throw IoError("pcapng block trailer length mismatch");
  }

  switch (type) {
    case kPcapngInterfaceDescription: {
      if (body.size() < 8) throw IoError("short interface description");
      Interface iface;
      iface.link_type = static_cast<LinkType>(load16(body.data()));
      iface.snaplen = load32(body.data() + 4);
      // Options: code(u16) length(u16) value(padded to 4).
      std::size_t pos = 8;
      while (pos + 4 <= body.size()) {
        const std::uint16_t code = load16(body.data() + pos);
        const std::uint16_t length = load16(body.data() + pos + 2);
        pos += 4;
        if (code == 0) break;  // opt_endofopt
        if (pos + length > body.size()) {
          throw IoError("pcapng option overruns its block");
        }
        if (code == 9 && length >= 1) {  // if_tsresol
          const std::uint8_t resol = body[pos];
          // 2^64 or 10^20 ticks per second cannot be represented (and a
          // shift of >= 64 is undefined); the file is bogus.
          if ((resol & 0x80) ? (resol & 0x7f) >= 64 : resol >= 20) {
            throw IoError("invalid if_tsresol");
          }
          if (resol & 0x80) {
            iface.ticks_per_second = 1ULL << (resol & 0x7f);
          } else {
            iface.ticks_per_second = 1;
            for (std::uint8_t i = 0; i < resol; ++i) {
              iface.ticks_per_second *= 10;
            }
          }
        }
        pos += (length + 3u) & ~3u;
      }
      if (!first_link_type_) first_link_type_ = iface.link_type;
      interfaces_.push_back(iface);
      return true;
    }
    case kPcapngEnhancedPacket: {
      if (body.size() < 20) throw IoError("short enhanced packet block");
      const std::uint32_t interface_id = load32(body.data());
      if (interface_id >= interfaces_.size()) {
        throw IoError("enhanced packet references unknown interface");
      }
      const Interface& iface = interfaces_[interface_id];
      const std::uint64_t ticks =
          (static_cast<std::uint64_t>(load32(body.data() + 4)) << 32) |
          load32(body.data() + 8);
      const std::uint32_t captured = load32(body.data() + 12);
      const std::uint32_t original = load32(body.data() + 16);
      if (20 + captured > body.size()) {
        throw IoError("enhanced packet data overruns its block");
      }
      // Convert interface ticks to microseconds without overflowing:
      // seconds exactly, sub-second remainder scaled.
      const std::uint64_t tps = iface.ticks_per_second;
      const std::uint64_t secs = ticks / tps;
      const std::uint64_t frac = ticks % tps;
      // ~year 294441 in microseconds; a capture timestamp past the int64
      // microsecond clock is a lying header, not a representable time.
      if (secs > static_cast<std::uint64_t>(
                     std::numeric_limits<TimeUs>::max() / kMicrosPerSecond)) {
        throw IoError("pcapng timestamp overflows the microsecond clock");
      }
      out->timestamp =
          static_cast<TimeUs>(secs) * kMicrosPerSecond +
          static_cast<TimeUs>(
              (static_cast<unsigned __int128>(frac) * kMicrosPerSecond) /
              tps);
      out->original_length = original;
      out->data.assign(body.begin() + 20, body.begin() + 20 + captured);
      last_link_type_ = iface.link_type;
      return true;
    }
    case kPcapngSimplePacket: {
      if (body.size() < 4) throw IoError("short simple packet block");
      if (interfaces_.empty()) {
        throw IoError("simple packet block before interface description");
      }
      const Interface& iface = interfaces_.front();
      const std::uint32_t original = load32(body.data());
      std::uint32_t captured = original;
      if (iface.snaplen != 0 && captured > iface.snaplen) {
        captured = iface.snaplen;
      }
      if (4 + captured > body.size()) {
        throw IoError("simple packet data overruns its block");
      }
      out->timestamp = 0;  // SPBs carry no timestamp
      out->original_length = original;
      out->data.assign(body.begin() + 4, body.begin() + 4 + captured);
      last_link_type_ = iface.link_type;
      return true;
    }
    default:
      return true;  // unknown block: skipped
  }
}

void PcapngReader::open_section(std::uint32_t total_length_raw) {
  std::array<std::uint8_t, 4> magic{};
  stream_->read(reinterpret_cast<char*>(magic.data()), 4);
  if (stream_->gcount() != 4) throw IoError("truncated section header");
  std::uint32_t magic_native;
  std::memcpy(&magic_native, magic.data(), sizeof(magic_native));
  if (magic_native == kPcapngByteOrderMagic) {
    swapped_ = false;
  } else if (swap32(magic_native) == kPcapngByteOrderMagic) {
    swapped_ = true;
  } else {
    throw IoError("bad pcapng byte-order magic");
  }
  const std::uint32_t total_length =
      swapped_ ? swap32(total_length_raw) : total_length_raw;
  if (total_length < 28 || total_length % 4 != 0 ||
      total_length > kMaxBlockBytes) {
    throw IoError("implausible section header length");
  }
  // Skip the rest of the SHB: version + section length + options + trailer.
  std::vector<char> rest(total_length - 12);
  stream_->read(rest.data(), static_cast<std::streamsize>(rest.size()));
  if (stream_->gcount() != static_cast<std::streamsize>(rest.size())) {
    throw IoError("truncated section header body");
  }
  in_section_ = true;
  interfaces_.clear();  // interface ids are per section
}

std::vector<Record> read_pcapng_file(const std::string& path) {
  PcapngReader reader(path);
  std::vector<Record> records;
  while (auto record = reader.next()) {
    records.push_back(std::move(*record));
  }
  return records;
}

LoadedCapture read_capture_auto(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw IoError("cannot open capture file: " + path);
  std::uint32_t magic = 0;
  probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (probe.gcount() != sizeof(magic)) {
    throw IoError("capture file shorter than a magic number");
  }
  probe.close();

  LoadedCapture capture;
  if (magic == kPcapngSectionHeader) {
    PcapngReader reader(path);
    while (auto record = reader.next()) {
      capture.records.push_back(std::move(*record));
    }
    capture.link_type =
        reader.first_link_type().value_or(LinkType::kEthernet);
    return capture;
  }
  PcapReader reader(path);
  capture.link_type = reader.header().link_type;
  while (auto record = reader.next()) {
    capture.records.push_back(std::move(*record));
  }
  return capture;
}

}  // namespace sscor::pcap
