#include "sscor/pcap/pcap_reader.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <fstream>

#include "sscor/util/error.hpp"

namespace sscor::pcap {
namespace {

/// Hard ceiling on one record's captured bytes, independent of the file's
/// declared snaplen.  Real captures keep snaplen <= 65535 (jumbo-frame
/// captures a little more); a crafted 24-byte header can claim anything up
/// to 4 GiB, so a buffer must never be sized from header fields alone.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

/// Body bytes are pulled in bounded chunks so a lying length field costs at
/// most one chunk of allocation beyond the bytes actually present.
constexpr std::size_t kReadChunkBytes = std::size_t{64} * 1024;

std::uint32_t load32(const std::uint8_t* b, bool swapped) {
  // Files are written in the native order of the capturing machine; we read
  // little-endian by default and byte-swap when the magic says otherwise.
  std::uint32_t v = static_cast<std::uint32_t>(b[0]) |
                    (static_cast<std::uint32_t>(b[1]) << 8) |
                    (static_cast<std::uint32_t>(b[2]) << 16) |
                    (static_cast<std::uint32_t>(b[3]) << 24);
  if (swapped) {
    v = ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
        ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
  }
  return v;
}

std::uint16_t load16(const std::uint8_t* b, bool swapped) {
  auto v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  if (swapped) {
    v = static_cast<std::uint16_t>((v << 8) | (v >> 8));
  }
  return v;
}

}  // namespace

PcapReader::PcapReader(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) throw IoError("cannot open pcap file: " + path);
  owned_stream_ = std::move(file);
  stream_ = owned_stream_.get();
  parse_global_header();
}

PcapReader::PcapReader(std::istream& stream) : stream_(&stream) {
  parse_global_header();
}

void PcapReader::parse_global_header() {
  std::array<std::uint8_t, kGlobalHeaderBytes> raw{};
  stream_->read(reinterpret_cast<char*>(raw.data()),
                static_cast<std::streamsize>(raw.size()));
  if (stream_->gcount() != static_cast<std::streamsize>(raw.size())) {
    throw IoError("pcap file shorter than the global header");
  }
  const std::uint32_t magic = load32(raw.data(), /*swapped=*/false);
  switch (magic) {
    case kMagicMicros:
      break;
    case kMagicNanos:
      header_.nanosecond = true;
      break;
    case kMagicMicrosSwapped:
      header_.swapped = true;
      break;
    case kMagicNanosSwapped:
      header_.swapped = true;
      header_.nanosecond = true;
      break;
    default:
      throw IoError("unrecognised pcap magic number");
  }
  header_.version_major = load16(raw.data() + 4, header_.swapped);
  header_.version_minor = load16(raw.data() + 6, header_.swapped);
  header_.snaplen = load32(raw.data() + 16, header_.swapped);
  const std::uint32_t link = load32(raw.data() + 20, header_.swapped);
  header_.link_type = static_cast<LinkType>(link);
}

std::optional<Record> PcapReader::next() {
  std::array<std::uint8_t, kRecordHeaderBytes> raw{};
  stream_->read(reinterpret_cast<char*>(raw.data()),
                static_cast<std::streamsize>(raw.size()));
  if (stream_->gcount() == 0) return std::nullopt;
  if (stream_->gcount() != static_cast<std::streamsize>(raw.size())) {
    throw IoError("truncated pcap record header");
  }
  const std::uint32_t ts_sec = load32(raw.data(), header_.swapped);
  const std::uint32_t ts_frac = load32(raw.data() + 4, header_.swapped);
  const std::uint32_t incl_len = load32(raw.data() + 8, header_.swapped);
  const std::uint32_t orig_len = load32(raw.data() + 12, header_.swapped);
  // 64-bit arithmetic: snaplen near UINT32_MAX must widen the bound, not
  // wrap it (which would let incl_len through unchecked).
  const std::uint64_t length_bound = std::min<std::uint64_t>(
      kMaxRecordBytes, static_cast<std::uint64_t>(header_.snaplen) + 65535u);
  if (incl_len > length_bound) {
    throw IoError("pcap record length is implausible; corrupt file?");
  }
  const std::uint32_t frac_limit =
      header_.nanosecond ? 1'000'000'000u : 1'000'000u;
  if (ts_frac >= frac_limit) {
    throw IoError("pcap record timestamp fraction out of range");
  }

  Record record;
  const std::int64_t frac_us =
      header_.nanosecond ? static_cast<std::int64_t>(ts_frac) / 1000
                         : static_cast<std::int64_t>(ts_frac);
  record.timestamp =
      static_cast<TimeUs>(ts_sec) * kMicrosPerSecond + frac_us;
  record.original_length = orig_len;
  // Incremental body read: grow the buffer only as bytes actually arrive,
  // so a truncated file never provokes an allocation larger than one chunk
  // past its real size.
  std::size_t remaining = incl_len;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, kReadChunkBytes);
    const std::size_t filled = record.data.size();
    record.data.resize(filled + chunk);
    stream_->read(reinterpret_cast<char*>(record.data.data() + filled),
                  static_cast<std::streamsize>(chunk));
    if (stream_->gcount() != static_cast<std::streamsize>(chunk)) {
      throw IoError("truncated pcap record body");
    }
    remaining -= chunk;
  }
  ++records_read_;
  return record;
}

std::vector<Record> read_pcap_file(const std::string& path) {
  PcapReader reader(path);
  std::vector<Record> records;
  while (auto record = reader.next()) {
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace sscor::pcap
