// Detection-rate / false-positive-rate / cost evaluation at one sweep point
// (one (Delta, lambda_c) combination), for any set of detectors.

#pragma once

#include <memory>
#include <vector>

#include "sscor/baselines/detector.hpp"
#include "sscor/experiment/dataset.hpp"
#include "sscor/util/stats.hpp"

namespace sscor::experiment {

struct DetectorMetrics {
  std::string detector;
  /// Fraction of (upstream_i, downstream_i) pairs reported correlated.
  double detection_rate = 0.0;
  /// Fraction of sampled (upstream_i, downstream_j), i != j, pairs
  /// reported correlated.
  double false_positive_rate = 0.0;
  RunningStats cost_correlated;
  RunningStats cost_uncorrelated;
};

struct EvaluationRequest {
  DurationUs max_delay = 0;   ///< Delta; also the maximum perturbation
  double chaff_rate = 0.0;    ///< lambda_c, pkt/s
  bool run_detection = true;
  bool run_false_positive = true;
};

/// Builds the detector line-up the paper compares: Greedy, Greedy+,
/// Greedy*, the basic watermark scheme, and the Zhang passive scheme, all
/// configured for `max_delay`.
std::vector<std::unique_ptr<Detector>> paper_detectors(
    const ExperimentConfig& config, DurationUs max_delay);

/// Evaluates every detector at one sweep point.  Downstream flows are
/// generated once and shared across detectors.
std::vector<DetectorMetrics> evaluate_point(
    const Dataset& dataset,
    const std::vector<std::unique_ptr<Detector>>& detectors,
    const EvaluationRequest& request);

}  // namespace sscor::experiment
