#include "sscor/experiment/sweep.hpp"

#include <mutex>

#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/trace.hpp"

namespace sscor::experiment {
namespace {

double metric_value(Metric metric, const DetectorMetrics& m) {
  switch (metric) {
    case Metric::kDetectionRate:
      return m.detection_rate;
    case Metric::kFalsePositiveRate:
      return m.false_positive_rate;
    case Metric::kCostCorrelated:
      return m.cost_correlated.mean();
    case Metric::kCostUncorrelated:
      return m.cost_uncorrelated.mean();
  }
  throw InternalError("unhandled metric");
}

bool needs_detection(Metric metric) {
  return metric == Metric::kDetectionRate ||
         metric == Metric::kCostCorrelated;
}

}  // namespace

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kDetectionRate:
      return "detection rate";
    case Metric::kFalsePositiveRate:
      return "false positive rate";
    case Metric::kCostCorrelated:
      return "cost (packets accessed), correlated flows";
    case Metric::kCostUncorrelated:
      return "cost (packets accessed), uncorrelated flows";
  }
  return "unknown";
}

TextTable run_sweep(const ExperimentConfig& config, const SweepSpec& spec,
                    const ProgressFn& progress) {
  const metrics::ScopedTimer sweep_timer("sweep.run");
  TRACE_SPAN("sweep.run");
  std::vector<double> chaff_rates = spec.chaff_rates;
  std::vector<DurationUs> max_delays = spec.max_delays;
  if (chaff_rates.empty()) {
    chaff_rates.assign(std::begin(kChaffRates), std::end(kChaffRates));
  }
  if (max_delays.empty()) {
    for (const auto s : kMaxDelaysSeconds) max_delays.push_back(seconds(s));
  }

  struct Point {
    DurationUs delay;
    double chaff;
    std::string label;
  };
  std::vector<Point> points;
  if (spec.axis == SweepAxis::kChaffRate) {
    for (const double rate : chaff_rates) {
      points.push_back(
          {spec.fixed_delay, rate, TextTable::cell(rate, 1)});
    }
  } else {
    for (const DurationUs delay : max_delays) {
      points.push_back(
          {delay, spec.fixed_chaff, TextTable::cell(to_seconds(delay), 0)});
    }
  }
  metrics::counter("sweep.points").add(points.size());

  const Dataset dataset = Dataset::build(config);

  const std::string x_header = spec.axis == SweepAxis::kChaffRate
                                   ? "chaff_rate_pps"
                                   : "max_delay_s";
  std::vector<std::string> header{x_header};
  {
    // Column names come from the detector line-up (delay value irrelevant).
    const auto detectors = paper_detectors(config, points.front().delay);
    for (const auto& d : detectors) header.push_back(d->name());
  }
  TextTable table(header);

  // Sweep points are mutually independent: every point derives its own
  // detectors and its downstream flows from (master seed, flow index,
  // point parameters), so dispatching them concurrently through the pool
  // changes only the schedule, never a value.  Rows are collected by point
  // index and appended in order, keeping the table byte-identical to the
  // threads=1 run.
  std::vector<std::vector<std::string>> rows(points.size());
  std::mutex progress_mutex;
  parallel_for(
      points.size(),
      [&](std::size_t p) {
        const auto& point = points[p];
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(p, points.size(), x_header + "=" + point.label);
        }
        const sscor::metrics::ScopedTimer point_timer("sweep.point");
        TRACE_SPAN("sweep.point");
        const auto detectors = paper_detectors(config, point.delay);
        EvaluationRequest request;
        request.max_delay = point.delay;
        request.chaff_rate = point.chaff;
        request.run_detection = needs_detection(spec.metric);
        request.run_false_positive = !request.run_detection;
        const auto point_metrics = evaluate_point(dataset, detectors, request);

        std::vector<std::string> row{point.label};
        for (const auto& m : point_metrics) {
          const double value = metric_value(spec.metric, m);
          const int precision =
              (spec.metric == Metric::kCostCorrelated ||
               spec.metric == Metric::kCostUncorrelated)
                  ? 0
                  : 4;
          row.push_back(TextTable::cell(value, precision));
        }
        rows[p] = std::move(row);
      },
      config.threads);
  for (auto& row : rows) {
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace sscor::experiment
