#include "sscor/experiment/sweep.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>

#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/trace.hpp"

namespace sscor::experiment {
namespace {

double metric_value(Metric metric, const DetectorMetrics& m) {
  switch (metric) {
    case Metric::kDetectionRate:
      return m.detection_rate;
    case Metric::kFalsePositiveRate:
      return m.false_positive_rate;
    case Metric::kCostCorrelated:
      return m.cost_correlated.mean();
    case Metric::kCostUncorrelated:
      return m.cost_uncorrelated.mean();
  }
  throw InternalError("unhandled metric");
}

bool needs_detection(Metric metric) {
  return metric == Metric::kDetectionRate ||
         metric == Metric::kCostCorrelated;
}

void resolve_axes(const SweepSpec& spec, std::vector<double>& chaff_rates,
                  std::vector<DurationUs>& max_delays) {
  chaff_rates = spec.chaff_rates;
  max_delays = spec.max_delays;
  if (chaff_rates.empty()) {
    chaff_rates.assign(std::begin(kChaffRates), std::end(kChaffRates));
  }
  if (max_delays.empty()) {
    for (const auto s : kMaxDelaysSeconds) max_delays.push_back(seconds(s));
  }
}

bool file_exists(const std::string& path) {
  if (std::FILE* file = std::fopen(path.c_str(), "rb")) {
    std::fclose(file);
    return true;
  }
  return false;
}

/// The resolved sweep: the point grid, the table header (the swept axis
/// plus one column per detector), and the config/spec fingerprint — shared
/// by the serial and sharded drivers so their tables agree byte for byte.
struct SweepPlan {
  struct Point {
    DurationUs delay;
    double chaff;
    std::string label;
  };
  std::vector<Point> points;
  std::vector<std::string> header;
  std::string x_header;
  std::uint64_t fingerprint = 0;
};

SweepPlan build_plan(const ExperimentConfig& config, const SweepSpec& spec) {
  SweepPlan plan;
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
  resolve_axes(spec, chaff_rates, max_delays);
  if (spec.axis == SweepAxis::kChaffRate) {
    for (const double rate : chaff_rates) {
      plan.points.push_back(
          {spec.fixed_delay, rate, TextTable::cell(rate, 1)});
    }
  } else {
    for (const DurationUs delay : max_delays) {
      plan.points.push_back(
          {delay, spec.fixed_chaff, TextTable::cell(to_seconds(delay), 0)});
    }
  }
  plan.x_header = spec.axis == SweepAxis::kChaffRate ? "chaff_rate_pps"
                                                     : "max_delay_s";
  plan.header.push_back(plan.x_header);
  {
    // Column names come from the detector line-up (delay value irrelevant).
    const auto detectors = paper_detectors(config, plan.points.front().delay);
    for (const auto& d : detectors) plan.header.push_back(d->name());
  }
  plan.fingerprint = sweep_fingerprint(config, spec);
  return plan;
}

/// Evaluates one sweep point into its table row.  A pure function of
/// (config, spec, point): every cell is deterministic, so any scheduling —
/// threads, shards, kill/resume splits — yields identical bytes.
std::vector<std::string> compute_row(const Dataset& dataset,
                                     const ExperimentConfig& config,
                                     const SweepSpec& spec,
                                     const SweepPlan::Point& point) {
  const sscor::metrics::ScopedTimer point_timer("sweep.point");
  TRACE_SPAN("sweep.point");
  const auto detectors = paper_detectors(config, point.delay);
  EvaluationRequest request;
  request.max_delay = point.delay;
  request.chaff_rate = point.chaff;
  request.run_detection = needs_detection(spec.metric);
  request.run_false_positive = !request.run_detection;
  const auto point_metrics = evaluate_point(dataset, detectors, request);

  std::vector<std::string> row{point.label};
  for (const auto& m : point_metrics) {
    const double value = metric_value(spec.metric, m);
    const int precision = (spec.metric == Metric::kCostCorrelated ||
                           spec.metric == Metric::kCostUncorrelated)
                              ? 0
                              : 4;
    row.push_back(TextTable::cell(value, precision));
  }
  return row;
}

}  // namespace

std::uint64_t sweep_fingerprint(const ExperimentConfig& config,
                                const SweepSpec& spec) {
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
  resolve_axes(spec, chaff_rates, max_delays);
  // Canonical text form of every value-determining field.  `threads` is
  // deliberately excluded: the table is schedule-independent, so a
  // checkpoint taken at 8 threads resumes fine at 1.
  std::string canon = "v1";
  auto field = [&canon](const std::string& value) {
    canon += '|';
    canon += value;
  };
  field(std::to_string(config.watermark.bits));
  field(std::to_string(config.watermark.redundancy));
  field(std::to_string(config.watermark.pair_offset));
  field(std::to_string(config.watermark.embedding_delay));
  field(std::to_string(config.hamming_threshold));
  field(std::to_string(config.cost_bound));
  field(std::to_string(config.zhang_threshold));
  field(to_string(config.corpus));
  field(std::to_string(config.flows));
  field(std::to_string(config.packets_per_flow));
  field(std::to_string(config.fp_pairs));
  field(std::to_string(config.master_seed));
  field(std::to_string(static_cast<int>(spec.metric)));
  field(std::to_string(static_cast<int>(spec.axis)));
  field(std::to_string(spec.fixed_delay));
  field(TextTable::cell(spec.fixed_chaff, 6));
  for (const double rate : chaff_rates) field(TextTable::cell(rate, 6));
  for (const DurationUs delay : max_delays) field(std::to_string(delay));
  return fnv1a64(canon);
}

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kDetectionRate:
      return "detection rate";
    case Metric::kFalsePositiveRate:
      return "false positive rate";
    case Metric::kCostCorrelated:
      return "cost (packets accessed), correlated flows";
    case Metric::kCostUncorrelated:
      return "cost (packets accessed), uncorrelated flows";
  }
  return "unknown";
}

TextTable run_sweep(const ExperimentConfig& config, const SweepSpec& spec,
                    const ProgressFn& progress, const SweepControl& control) {
  const metrics::ScopedTimer sweep_timer("sweep.run");
  TRACE_SPAN("sweep.run");
  const SweepPlan plan = build_plan(config, spec);
  const auto& points = plan.points;
  metrics::counter("sweep.points").add(points.size());

  const Dataset dataset = Dataset::build(config);
  TextTable table(plan.header);

  // Crash-safe checkpointing: replay previously journaled points (resume),
  // then journal each newly completed point as one checksummed line.
  std::vector<std::vector<std::string>> rows(points.size());
  std::vector<char> have(points.size(), 0);
  std::optional<CheckpointJournal> journal;
  std::mutex journal_mutex;
  if (control.checkpoint.enabled()) {
    const bool resuming =
        control.checkpoint.resume && file_exists(control.checkpoint.path);
    if (resuming) {
      const LoadedCheckpoint loaded =
          load_checkpoint(control.checkpoint.path);
      std::uint64_t got_fingerprint = 0;
      std::size_t got_points = 0;
      std::size_t got_columns = 0;
      std::vector<std::string> got_names;
      if (!decode_checkpoint_header(loaded.header, got_fingerprint,
                                    got_points, got_columns, got_names) ||
          got_fingerprint != plan.fingerprint ||
          got_points != points.size() ||
          got_columns != plan.header.size() ||
          (!got_names.empty() && got_names != plan.header)) {
        throw IoError(
            "checkpoint was written by a different sweep "
            "(config or spec changed): " +
            control.checkpoint.path);
      }
      std::uint64_t resumed = 0;
      for (const std::string& record : loaded.records) {
        std::size_t p = 0;
        std::vector<std::string> row;
        if (!decode_checkpoint_row(record, p, row) || p >= points.size() ||
            row.size() != plan.header.size() || have[p] != 0) {
          continue;  // malformed, duplicate, or claim record: recompute
        }
        rows[p] = std::move(row);
        have[p] = 1;
        ++resumed;
      }
      metrics::counter("checkpoint.resumed_points").add(resumed);
      metrics::counter("checkpoint.dropped_lines")
          .add(loaded.dropped_lines);
      journal.emplace(CheckpointJournal::append_to(control.checkpoint.path,
                                                   control.checkpoint.fsync));
    } else {
      journal.emplace(CheckpointJournal::create(
          control.checkpoint.path,
          encode_checkpoint_header(plan.fingerprint, points.size(),
                                   plan.header.size(), plan.header),
          control.checkpoint.fsync));
    }
  }

  // Sweep points are mutually independent: every point derives its own
  // detectors and its downstream flows from (master seed, flow index,
  // point parameters), so dispatching them concurrently through the pool
  // changes only the schedule, never a value.  Rows are collected by point
  // index and appended in order, keeping the table byte-identical to the
  // threads=1 run — and to any kill/resume split of the same sweep.
  std::mutex progress_mutex;
  parallel_for(
      points.size(),
      [&](std::size_t p) {
        if (have[p] != 0) return;  // replayed from the checkpoint
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(p, points.size(), plan.x_header + "=" + points[p].label);
        }
        rows[p] = compute_row(dataset, config, spec, points[p]);
        if (journal) {
          const std::lock_guard<std::mutex> lock(journal_mutex);
          journal->append(encode_checkpoint_row(p, rows[p]));
          if (control.checkpoint.sigkill_after_points >= 0 &&
              journal->appended() >=
                  static_cast<std::uint64_t>(
                      control.checkpoint.sigkill_after_points)) {
            // Crash-injection hook: die as hard as a power cut, right
            // after the journal line reached the OS.
            std::raise(SIGKILL);
          }
        }
      },
      config.threads, control.cancel);
  if (control.cancel != nullptr && control.cancel->stop_requested()) {
    metrics::counter("sweep.cancelled").add();
    throw Cancelled("sweep cancelled after " +
                    std::to_string(journal ? journal->appended() : 0) +
                    " newly completed points; checkpoint (if any) is "
                    "resumable");
  }
  for (auto& row : rows) {
    table.add_row(std::move(row));
  }
  return table;
}

std::optional<TextTable> run_sweep_shard(const ExperimentConfig& config,
                                         const SweepSpec& spec,
                                         const ShardSpec& shard,
                                         const ProgressFn& progress,
                                         const SweepControl& control) {
  namespace fs = std::filesystem;
  require(shard.count > 0, "shard count must be positive");
  require(shard.index < shard.count, "shard index out of range");
  require(!shard.journal_dir.empty(), "sharded sweep needs a journal dir");

  const metrics::ScopedTimer sweep_timer("sweep.run_shard");
  TRACE_SPAN("sweep.run_shard");
  const SweepPlan plan = build_plan(config, spec);
  const std::size_t point_count = plan.points.size();
  const std::string header_data = encode_checkpoint_header(
      plan.fingerprint, point_count, plan.header.size(), plan.header);

  fs::create_directories(shard.journal_dir);
  const std::string own_path =
      (fs::path(shard.journal_dir) /
       shard_journal_name(shard.index, shard.count))
          .string();

  // Open (or fresh-create) this shard's journal.  repair_torn_tail runs
  // inside append_to; a journal torn all the way back to an unreadable
  // header (death mid-first-write) is recreated from scratch — its records
  // were unrecoverable anyway.
  std::optional<CheckpointJournal> journal;
  if (control.checkpoint.resume && file_exists(own_path)) {
    repair_torn_tail(own_path);
    bool readable = false;
    try {
      const LoadedCheckpoint own = load_checkpoint(own_path);
      std::uint64_t got_fingerprint = 0;
      std::size_t got_points = 0, got_columns = 0;
      std::vector<std::string> got_names;
      if (decode_checkpoint_header(own.header, got_fingerprint, got_points,
                                   got_columns, got_names)) {
        if (got_fingerprint != plan.fingerprint ||
            got_points != point_count ||
            got_columns != plan.header.size() ||
            (!got_names.empty() && got_names != plan.header)) {
          throw IoError(
              "shard journal was written by a different sweep "
              "(config or spec changed): " +
              own_path);
        }
        readable = true;
      }
    } catch (const IoError& e) {
      // Distinguish "wrong sweep" (fatal, rethrown above as a fresh
      // IoError with that message) from "unreadable header" (recreate).
      if (std::string(e.what()).find("different sweep") !=
          std::string::npos) {
        throw;
      }
      readable = false;
    }
    if (readable) {
      journal.emplace(
          CheckpointJournal::append_to(own_path, control.checkpoint.fsync));
    } else {
      journal.emplace(CheckpointJournal::create(own_path, header_data,
                                                control.checkpoint.fsync));
    }
  } else {
    journal.emplace(CheckpointJournal::create(own_path, header_data,
                                              control.checkpoint.fsync));
  }

  // Fold the whole directory: completed points anywhere count as done, and
  // claims pin stolen points to their claimer.
  auto scan_all = [&]() {
    ClusterScan scan = scan_journal_dir(shard.journal_dir);
    if (scan.shard_files > 0) {
      if (scan.shard_count != shard.count) {
        throw IoError("journal dir belongs to a " +
                      std::to_string(scan.shard_count) +
                      "-way cluster, not " + std::to_string(shard.count) +
                      ": " + shard.journal_dir);
      }
      if (scan.fingerprint != plan.fingerprint ||
          scan.points != point_count ||
          scan.columns != plan.header.size()) {
        throw IoError(
            "journal dir was written by a different sweep "
            "(config or spec changed): " +
            shard.journal_dir);
      }
    }
    if (scan.have.size() != point_count) {
      scan.rows.assign(point_count, {});
      scan.have.assign(point_count, 0);
      scan.row_shard.assign(point_count, 0);
      scan.points = point_count;
    }
    return scan;
  };

  ClusterScan scan = scan_all();
  metrics::counter("cluster.resumed_points")
      .add(static_cast<std::uint64_t>(
          std::count(scan.have.begin(), scan.have.end(), char{1})));

  const auto mine = [&](std::size_t p) {
    if (p % shard.count == shard.index) return true;
    for (const auto& [claimer, point] : scan.claims) {
      if (point == p && claimer == shard.index) return true;
    }
    return false;
  };

  // The dataset is the expensive part of startup; a worker that resumes
  // into an already-complete partition never builds it.
  std::optional<Dataset> dataset;
  const auto ensure_dataset = [&]() -> const Dataset& {
    if (!dataset) dataset.emplace(Dataset::build(config));
    return *dataset;
  };

  std::mutex journal_mutex;
  std::mutex progress_mutex;
  const auto compute_targets = [&](const std::vector<std::size_t>& targets) {
    if (targets.empty()) return;
    const Dataset& data = ensure_dataset();
    parallel_for(
        targets.size(),
        [&](std::size_t i) {
          const std::size_t p = targets[i];
          if (progress) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            progress(p, point_count,
                     plan.x_header + "=" + plan.points[p].label);
          }
          auto row = compute_row(data, config, spec, plan.points[p]);
          {
            const std::lock_guard<std::mutex> lock(journal_mutex);
            journal->append(encode_checkpoint_row(p, row));
            if (control.checkpoint.sigkill_after_points >= 0 &&
                journal->appended() >=
                    static_cast<std::uint64_t>(
                        control.checkpoint.sigkill_after_points)) {
              std::raise(SIGKILL);
            }
          }
          scan.rows[p] = std::move(row);
          scan.have[p] = 1;
        },
        config.threads, control.cancel);
    if (control.cancel != nullptr && control.cancel->stop_requested()) {
      metrics::counter("sweep.cancelled").add();
      throw Cancelled("shard " + std::to_string(shard.index) +
                      " cancelled; journal is resumable");
    }
  };

  // Pass 1: this shard's partition — owned points plus points it claimed
  // in a previous (killed) incarnation.
  std::vector<std::size_t> owned;
  for (std::size_t p = 0; p < point_count; ++p) {
    if (scan.have[p] == 0 && mine(p)) owned.push_back(p);
  }
  compute_targets(owned);

  // Pass 2 (work stealing): rescan for points no shard has completed or
  // claimed — typically the unstarted share of a crashed worker.  The
  // claim is journaled before the compute so other live workers skip the
  // point and a post-claim death pins it to this shard's resume.
  if (shard.steal) {
    scan = scan_all();
    std::vector<std::size_t> stolen;
    for (std::size_t p = 0; p < point_count; ++p) {
      if (scan.have[p] == 0 && !mine(p) && !scan.claimed(p)) {
        stolen.push_back(p);
      }
    }
    if (!stolen.empty()) {
      {
        const std::lock_guard<std::mutex> lock(journal_mutex);
        for (const std::size_t p : stolen) {
          journal->append(encode_checkpoint_claim(p, shard.index));
          if (control.checkpoint.sigkill_after_points >= 0 &&
              journal->appended() >=
                  static_cast<std::uint64_t>(
                      control.checkpoint.sigkill_after_points)) {
            std::raise(SIGKILL);
          }
        }
      }
      metrics::counter("cluster.stolen_points").add(stolen.size());
      compute_targets(stolen);
    }
  }

  // Implicit merge on finalize: when the directory holds every point, any
  // finishing worker can emit the table — the bytes are the same whoever
  // does.  Otherwise other shards still own outstanding points.
  scan = scan_all();
  if (!scan.complete()) return std::nullopt;
  return merge_cluster(scan);
}

}  // namespace sscor::experiment
