#include "sscor/experiment/sweep.hpp"

#include <csignal>
#include <cstdio>
#include <mutex>
#include <optional>

#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/trace.hpp"

namespace sscor::experiment {
namespace {

double metric_value(Metric metric, const DetectorMetrics& m) {
  switch (metric) {
    case Metric::kDetectionRate:
      return m.detection_rate;
    case Metric::kFalsePositiveRate:
      return m.false_positive_rate;
    case Metric::kCostCorrelated:
      return m.cost_correlated.mean();
    case Metric::kCostUncorrelated:
      return m.cost_uncorrelated.mean();
  }
  throw InternalError("unhandled metric");
}

bool needs_detection(Metric metric) {
  return metric == Metric::kDetectionRate ||
         metric == Metric::kCostCorrelated;
}

void resolve_axes(const SweepSpec& spec, std::vector<double>& chaff_rates,
                  std::vector<DurationUs>& max_delays) {
  chaff_rates = spec.chaff_rates;
  max_delays = spec.max_delays;
  if (chaff_rates.empty()) {
    chaff_rates.assign(std::begin(kChaffRates), std::end(kChaffRates));
  }
  if (max_delays.empty()) {
    for (const auto s : kMaxDelaysSeconds) max_delays.push_back(seconds(s));
  }
}

bool file_exists(const std::string& path) {
  if (std::FILE* file = std::fopen(path.c_str(), "rb")) {
    std::fclose(file);
    return true;
  }
  return false;
}

}  // namespace

std::uint64_t sweep_fingerprint(const ExperimentConfig& config,
                                const SweepSpec& spec) {
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
  resolve_axes(spec, chaff_rates, max_delays);
  // Canonical text form of every value-determining field.  `threads` is
  // deliberately excluded: the table is schedule-independent, so a
  // checkpoint taken at 8 threads resumes fine at 1.
  std::string canon = "v1";
  auto field = [&canon](const std::string& value) {
    canon += '|';
    canon += value;
  };
  field(std::to_string(config.watermark.bits));
  field(std::to_string(config.watermark.redundancy));
  field(std::to_string(config.watermark.pair_offset));
  field(std::to_string(config.watermark.embedding_delay));
  field(std::to_string(config.hamming_threshold));
  field(std::to_string(config.cost_bound));
  field(std::to_string(config.zhang_threshold));
  field(to_string(config.corpus));
  field(std::to_string(config.flows));
  field(std::to_string(config.packets_per_flow));
  field(std::to_string(config.fp_pairs));
  field(std::to_string(config.master_seed));
  field(std::to_string(static_cast<int>(spec.metric)));
  field(std::to_string(static_cast<int>(spec.axis)));
  field(std::to_string(spec.fixed_delay));
  field(TextTable::cell(spec.fixed_chaff, 6));
  for (const double rate : chaff_rates) field(TextTable::cell(rate, 6));
  for (const DurationUs delay : max_delays) field(std::to_string(delay));
  return fnv1a64(canon);
}

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kDetectionRate:
      return "detection rate";
    case Metric::kFalsePositiveRate:
      return "false positive rate";
    case Metric::kCostCorrelated:
      return "cost (packets accessed), correlated flows";
    case Metric::kCostUncorrelated:
      return "cost (packets accessed), uncorrelated flows";
  }
  return "unknown";
}

TextTable run_sweep(const ExperimentConfig& config, const SweepSpec& spec,
                    const ProgressFn& progress, const SweepControl& control) {
  const metrics::ScopedTimer sweep_timer("sweep.run");
  TRACE_SPAN("sweep.run");
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
  resolve_axes(spec, chaff_rates, max_delays);

  struct Point {
    DurationUs delay;
    double chaff;
    std::string label;
  };
  std::vector<Point> points;
  if (spec.axis == SweepAxis::kChaffRate) {
    for (const double rate : chaff_rates) {
      points.push_back(
          {spec.fixed_delay, rate, TextTable::cell(rate, 1)});
    }
  } else {
    for (const DurationUs delay : max_delays) {
      points.push_back(
          {delay, spec.fixed_chaff, TextTable::cell(to_seconds(delay), 0)});
    }
  }
  metrics::counter("sweep.points").add(points.size());

  const Dataset dataset = Dataset::build(config);

  const std::string x_header = spec.axis == SweepAxis::kChaffRate
                                   ? "chaff_rate_pps"
                                   : "max_delay_s";
  std::vector<std::string> header{x_header};
  {
    // Column names come from the detector line-up (delay value irrelevant).
    const auto detectors = paper_detectors(config, points.front().delay);
    for (const auto& d : detectors) header.push_back(d->name());
  }
  TextTable table(header);

  // Crash-safe checkpointing: replay previously journaled points (resume),
  // then journal each newly completed point as one checksummed line.
  std::vector<std::vector<std::string>> rows(points.size());
  std::vector<char> have(points.size(), 0);
  std::optional<CheckpointJournal> journal;
  std::mutex journal_mutex;
  if (control.checkpoint.enabled()) {
    const std::uint64_t fingerprint = sweep_fingerprint(config, spec);
    const bool resuming =
        control.checkpoint.resume && file_exists(control.checkpoint.path);
    if (resuming) {
      const LoadedCheckpoint loaded =
          load_checkpoint(control.checkpoint.path);
      std::uint64_t got_fingerprint = 0;
      std::size_t got_points = 0;
      std::size_t got_columns = 0;
      if (!decode_checkpoint_header(loaded.header, got_fingerprint,
                                    got_points, got_columns) ||
          got_fingerprint != fingerprint || got_points != points.size() ||
          got_columns != header.size()) {
        throw IoError(
            "checkpoint was written by a different sweep "
            "(config or spec changed): " +
            control.checkpoint.path);
      }
      std::uint64_t resumed = 0;
      for (const std::string& record : loaded.records) {
        std::size_t p = 0;
        std::vector<std::string> row;
        if (!decode_checkpoint_row(record, p, row) || p >= points.size() ||
            row.size() != header.size() || have[p] != 0) {
          continue;  // malformed or duplicate record: recompute the point
        }
        rows[p] = std::move(row);
        have[p] = 1;
        ++resumed;
      }
      metrics::counter("checkpoint.resumed_points").add(resumed);
      metrics::counter("checkpoint.dropped_lines")
          .add(loaded.dropped_lines);
      journal.emplace(CheckpointJournal::append_to(control.checkpoint.path));
    } else {
      journal.emplace(CheckpointJournal::create(
          control.checkpoint.path,
          encode_checkpoint_header(fingerprint, points.size(),
                                   header.size())));
    }
  }

  // Sweep points are mutually independent: every point derives its own
  // detectors and its downstream flows from (master seed, flow index,
  // point parameters), so dispatching them concurrently through the pool
  // changes only the schedule, never a value.  Rows are collected by point
  // index and appended in order, keeping the table byte-identical to the
  // threads=1 run — and to any kill/resume split of the same sweep.
  std::mutex progress_mutex;
  parallel_for(
      points.size(),
      [&](std::size_t p) {
        if (have[p] != 0) return;  // replayed from the checkpoint
        const auto& point = points[p];
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(p, points.size(), x_header + "=" + point.label);
        }
        const sscor::metrics::ScopedTimer point_timer("sweep.point");
        TRACE_SPAN("sweep.point");
        const auto detectors = paper_detectors(config, point.delay);
        EvaluationRequest request;
        request.max_delay = point.delay;
        request.chaff_rate = point.chaff;
        request.run_detection = needs_detection(spec.metric);
        request.run_false_positive = !request.run_detection;
        const auto point_metrics = evaluate_point(dataset, detectors, request);

        std::vector<std::string> row{point.label};
        for (const auto& m : point_metrics) {
          const double value = metric_value(spec.metric, m);
          const int precision =
              (spec.metric == Metric::kCostCorrelated ||
               spec.metric == Metric::kCostUncorrelated)
                  ? 0
                  : 4;
          row.push_back(TextTable::cell(value, precision));
        }
        rows[p] = std::move(row);
        if (journal) {
          const std::lock_guard<std::mutex> lock(journal_mutex);
          journal->append(encode_checkpoint_row(p, rows[p]));
          if (control.checkpoint.sigkill_after_points >= 0 &&
              journal->appended() >=
                  static_cast<std::uint64_t>(
                      control.checkpoint.sigkill_after_points)) {
            // Crash-injection hook: die as hard as a power cut, right
            // after the journal line reached the OS.
            std::raise(SIGKILL);
          }
        }
      },
      config.threads, control.cancel);
  if (control.cancel != nullptr && control.cancel->stop_requested()) {
    metrics::counter("sweep.cancelled").add();
    throw Cancelled("sweep cancelled after " +
                    std::to_string(journal ? journal->appended() : 0) +
                    " newly completed points; checkpoint (if any) is "
                    "resumable");
  }
  for (auto& row : rows) {
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace sscor::experiment
