// Deterministic multi-flow streaming corpora.
//
// The streaming parity suite, the flow-table stress tests, and the
// stream-throughput bench all need the same thing: a set of watermarked
// upstream flows, a mixed population of downstream flows (the watermark
// carriers, adversarially perturbed and chaffed, plus unwatermarked
// decoys), and that population flattened into one time-ordered packet
// stream a StreamEngine can ingest.  Everything is a pure function of the
// seed, built on the experiment Dataset so the adversary model matches the
// paper's evaluation.

#pragma once

#include <vector>

#include "sscor/experiment/config.hpp"
#include "sscor/stream/packet_source.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor::experiment {

struct StreamCorpusConfig {
  /// Watermarked upstreams; downstream flow i < watermarked_flows carries
  /// upstream i's watermark.
  std::size_t watermarked_flows = 2;
  /// Additional unwatermarked flows mixed into the stream.
  std::size_t decoy_flows = 4;
  std::size_t packets_per_flow = 400;
  /// Adversary model applied to the watermark carriers (paper §4).
  DurationUs max_perturbation = seconds(std::int64_t{3});
  double chaff_rate = 2.0;
  std::uint64_t seed = 1;
  Corpus corpus = Corpus::kInteractive;
  WatermarkParams watermark;
};

struct StreamCorpus {
  /// One per watermarked flow, index-aligned with the engine's verdicts.
  std::vector<WatermarkedFlow> upstreams;
  /// Tuple of downstream flow k (carriers first, then decoys).
  std::vector<net::FiveTuple> tuples;
  /// Downstream flow k exactly as the batch extractor would group it.
  std::vector<Flow> downstream;
  /// Every downstream packet, globally time-ordered (stable by flow then
  /// packet index on ties) — the stream the engine ingests.
  std::vector<stream::StreamPacket> packets;
};

/// The tuple assigned to downstream flow `index` (deterministic, unique
/// for any realistic corpus size).
net::FiveTuple stream_corpus_tuple(std::size_t index);

StreamCorpus make_stream_corpus(const StreamCorpusConfig& config);

}  // namespace sscor::experiment
