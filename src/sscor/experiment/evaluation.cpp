#include "sscor/experiment/evaluation.hpp"

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"

namespace sscor::experiment {

std::vector<std::unique_ptr<Detector>> paper_detectors(
    const ExperimentConfig& config, DurationUs max_delay) {
  CorrelatorConfig cc;
  cc.max_delay = max_delay;
  cc.hamming_threshold = config.hamming_threshold;
  cc.cost_bound = config.cost_bound;

  ZhangPassiveParams zp;
  zp.deviation_threshold = config.zhang_threshold;
  zp.max_delay = max_delay;

  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedy));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyPlus));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyStar));
  detectors.push_back(
      std::make_unique<BasicWatermarkDetector>(config.hamming_threshold));
  detectors.push_back(std::make_unique<ZhangPassiveDetector>(zp));
  return detectors;
}

std::vector<DetectorMetrics> evaluate_point(
    const Dataset& dataset,
    const std::vector<std::unique_ptr<Detector>>& detectors,
    const EvaluationRequest& request) {
  const unsigned threads = dataset.config().threads;
  const sscor::metrics::ScopedTimer point_timer("eval.point");

  // Downstream flows are shared by every detector; generate them in
  // parallel (each is an independent function of the seed).
  std::vector<Flow> downstream(dataset.size());
  {
    const sscor::metrics::ScopedTimer timer("eval.downstream_gen");
    parallel_for(
        dataset.size(),
        [&](std::size_t i) {
          downstream[i] =
              dataset.downstream(i, request.max_delay, request.chaff_rate);
        },
        threads);
  }

  std::vector<DetectorMetrics> metrics(detectors.size());
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    metrics[d].detector = detectors[d]->name();
  }

  if (request.run_detection) {
    const sscor::metrics::ScopedTimer timer("eval.detection");
    std::vector<DetectionOutcome> outcomes(dataset.size());
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      parallel_for(
          dataset.size(),
          [&](std::size_t i) {
            outcomes[i] =
                detectors[d]->detect(dataset.upstream(i), downstream[i]);
          },
          threads);
      // Reduce sequentially so the statistics are schedule-independent.
      std::size_t detected = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes) {
        detected += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_correlated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].detection_rate =
          static_cast<double>(detected) / static_cast<double>(dataset.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes.size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }

  if (request.run_false_positive) {
    const sscor::metrics::ScopedTimer timer("eval.false_positive");
    const auto pairs = dataset.sample_fp_pairs(dataset.config().fp_pairs);
    std::vector<DetectionOutcome> outcomes(pairs.size());
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      parallel_for(
          pairs.size(),
          [&](std::size_t k) {
            const auto& [i, j] = pairs[k];
            outcomes[k] =
                detectors[d]->detect(dataset.upstream(i), downstream[j]);
          },
          threads);
      std::size_t false_positives = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes) {
        false_positives += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_uncorrelated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].false_positive_rate =
          static_cast<double>(false_positives) /
          static_cast<double>(pairs.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes.size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }
  return metrics;
}

}  // namespace sscor::experiment
