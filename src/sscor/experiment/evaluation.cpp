#include "sscor/experiment/evaluation.hpp"

#include <cinttypes>
#include <cstdio>

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/matching/match_context.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/trace.hpp"

namespace sscor::experiment {
namespace {

/// Decode-trace pair label: unique per (sweep point, pair kind, indices) so
/// the per-pair sort of the JSONL export is a total order and the exported
/// file is byte-identical across thread schedules.
std::string pair_label(const EvaluationRequest& request, const char* kind,
                       std::size_t i, std::size_t j) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "d=%" PRId64 ",c=%.3f,%s,i=%04zu,j=%04zu",
                request.max_delay, request.chaff_rate, kind, i, j);
  return buf;
}

/// Per-pair cache of MatchContexts, one per distinct key among the swept
/// detectors (in the paper sweep all correlator detectors share one key, so
/// this holds at most one entry).  Returns a reference valid until the next
/// insertion.
const MatchContext& context_for(
    std::vector<std::pair<MatchContextKey, MatchContext>>& cache,
    const Flow& upstream, const Flow& downstream, const MatchContextKey& key) {
  for (const auto& [k, ctx] : cache) {
    if (k == key) return ctx;
  }
  sscor::metrics::counter("match_context.builds").add();
  cache.emplace_back(key, MatchContext::build(upstream, downstream,
                                              key.max_delay, key.size));
  return cache.back().second;
}

}  // namespace

std::vector<std::unique_ptr<Detector>> paper_detectors(
    const ExperimentConfig& config, DurationUs max_delay) {
  CorrelatorConfig cc;
  cc.max_delay = max_delay;
  cc.hamming_threshold = config.hamming_threshold;
  cc.cost_bound = config.cost_bound;

  ZhangPassiveParams zp;
  zp.deviation_threshold = config.zhang_threshold;
  zp.max_delay = max_delay;

  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedy));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyPlus));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyStar));
  detectors.push_back(
      std::make_unique<BasicWatermarkDetector>(config.hamming_threshold));
  detectors.push_back(std::make_unique<ZhangPassiveDetector>(zp));
  return detectors;
}

std::vector<DetectorMetrics> evaluate_point(
    const Dataset& dataset,
    const std::vector<std::unique_ptr<Detector>>& detectors,
    const EvaluationRequest& request) {
  const unsigned threads = dataset.config().threads;
  const sscor::metrics::ScopedTimer point_timer("eval.point");
  TRACE_SPAN("eval.point");

  // Downstream flows are shared by every detector; generate them in
  // parallel (each is an independent function of the seed).
  std::vector<Flow> downstream(dataset.size());
  {
    const sscor::metrics::ScopedTimer timer("eval.downstream_gen");
    TRACE_SPAN("eval.downstream_gen");
    parallel_for(
        dataset.size(),
        [&](std::size_t i) {
          TRACE_SPAN("eval.downstream_gen.flow");
          downstream[i] =
              dataset.downstream(i, request.max_delay, request.chaff_rate);
        },
        threads);
  }

  std::vector<DetectorMetrics> metrics(detectors.size());
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    metrics[d].detector = detectors[d]->name();
  }

  if (request.run_detection) {
    const sscor::metrics::ScopedTimer timer("eval.detection");
    TRACE_SPAN("eval.detection");
    // Pair-outer / detector-inner: the watermark-independent matching
    // phase is computed once per pair and shared by every detector with
    // the same key, so at most one MatchContext is alive per worker.
    std::vector<std::vector<DetectionOutcome>> outcomes(
        detectors.size(), std::vector<DetectionOutcome>(dataset.size()));
    parallel_for(
        dataset.size(),
        [&](std::size_t i) {
          TRACE_SPAN("eval.pair");
          const trace::DecodePairScope pair_scope(
              trace::decode_enabled() ? pair_label(request, "det", i, i)
                                      : std::string());
          const WatermarkedFlow& up = dataset.upstream(i);
          const Flow& down = downstream[i];
          std::vector<std::pair<MatchContextKey, MatchContext>> contexts;
          for (std::size_t d = 0; d < detectors.size(); ++d) {
            const auto key = detectors[d]->shared_match_key();
            const MatchContext* context =
                key ? &context_for(contexts, up.flow, down, *key) : nullptr;
            outcomes[d][i] =
                detectors[d]->detect_with_context(up, down, context);
          }
        },
        threads);
    // Reduce sequentially so the statistics are schedule-independent.
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      std::size_t detected = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes[d]) {
        detected += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_correlated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].detection_rate =
          static_cast<double>(detected) / static_cast<double>(dataset.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes[d].size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }

  if (request.run_false_positive) {
    const sscor::metrics::ScopedTimer timer("eval.false_positive");
    TRACE_SPAN("eval.false_positive");
    const auto pairs = dataset.sample_fp_pairs(dataset.config().fp_pairs);
    std::vector<std::vector<DetectionOutcome>> outcomes(
        detectors.size(), std::vector<DetectionOutcome>(pairs.size()));
    parallel_for(
        pairs.size(),
        [&](std::size_t k) {
          TRACE_SPAN("eval.pair");
          const auto& [i, j] = pairs[k];
          const trace::DecodePairScope pair_scope(
              trace::decode_enabled() ? pair_label(request, "fp", i, j)
                                      : std::string());
          const WatermarkedFlow& up = dataset.upstream(i);
          const Flow& down = downstream[j];
          std::vector<std::pair<MatchContextKey, MatchContext>> contexts;
          for (std::size_t d = 0; d < detectors.size(); ++d) {
            const auto key = detectors[d]->shared_match_key();
            const MatchContext* context =
                key ? &context_for(contexts, up.flow, down, *key) : nullptr;
            outcomes[d][k] =
                detectors[d]->detect_with_context(up, down, context);
          }
        },
        threads);
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      std::size_t false_positives = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes[d]) {
        false_positives += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_uncorrelated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].false_positive_rate =
          static_cast<double>(false_positives) /
          static_cast<double>(pairs.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes[d].size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }
  return metrics;
}

}  // namespace sscor::experiment
