#include "sscor/experiment/evaluation.hpp"

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/matching/match_context.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"

namespace sscor::experiment {
namespace {

/// Per-pair cache of MatchContexts, one per distinct key among the swept
/// detectors (in the paper sweep all correlator detectors share one key, so
/// this holds at most one entry).  Returns a reference valid until the next
/// insertion.
const MatchContext& context_for(
    std::vector<std::pair<MatchContextKey, MatchContext>>& cache,
    const Flow& upstream, const Flow& downstream, const MatchContextKey& key) {
  for (const auto& [k, ctx] : cache) {
    if (k == key) return ctx;
  }
  sscor::metrics::counter("match_context.builds").add();
  cache.emplace_back(key, MatchContext::build(upstream, downstream,
                                              key.max_delay, key.size));
  return cache.back().second;
}

}  // namespace

std::vector<std::unique_ptr<Detector>> paper_detectors(
    const ExperimentConfig& config, DurationUs max_delay) {
  CorrelatorConfig cc;
  cc.max_delay = max_delay;
  cc.hamming_threshold = config.hamming_threshold;
  cc.cost_bound = config.cost_bound;

  ZhangPassiveParams zp;
  zp.deviation_threshold = config.zhang_threshold;
  zp.max_delay = max_delay;

  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedy));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyPlus));
  detectors.push_back(
      std::make_unique<CorrelatorDetector>(cc, Algorithm::kGreedyStar));
  detectors.push_back(
      std::make_unique<BasicWatermarkDetector>(config.hamming_threshold));
  detectors.push_back(std::make_unique<ZhangPassiveDetector>(zp));
  return detectors;
}

std::vector<DetectorMetrics> evaluate_point(
    const Dataset& dataset,
    const std::vector<std::unique_ptr<Detector>>& detectors,
    const EvaluationRequest& request) {
  const unsigned threads = dataset.config().threads;
  const sscor::metrics::ScopedTimer point_timer("eval.point");

  // Downstream flows are shared by every detector; generate them in
  // parallel (each is an independent function of the seed).
  std::vector<Flow> downstream(dataset.size());
  {
    const sscor::metrics::ScopedTimer timer("eval.downstream_gen");
    parallel_for(
        dataset.size(),
        [&](std::size_t i) {
          downstream[i] =
              dataset.downstream(i, request.max_delay, request.chaff_rate);
        },
        threads);
  }

  std::vector<DetectorMetrics> metrics(detectors.size());
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    metrics[d].detector = detectors[d]->name();
  }

  if (request.run_detection) {
    const sscor::metrics::ScopedTimer timer("eval.detection");
    // Pair-outer / detector-inner: the watermark-independent matching
    // phase is computed once per pair and shared by every detector with
    // the same key, so at most one MatchContext is alive per worker.
    std::vector<std::vector<DetectionOutcome>> outcomes(
        detectors.size(), std::vector<DetectionOutcome>(dataset.size()));
    parallel_for(
        dataset.size(),
        [&](std::size_t i) {
          const WatermarkedFlow& up = dataset.upstream(i);
          const Flow& down = downstream[i];
          std::vector<std::pair<MatchContextKey, MatchContext>> contexts;
          for (std::size_t d = 0; d < detectors.size(); ++d) {
            const auto key = detectors[d]->shared_match_key();
            const MatchContext* context =
                key ? &context_for(contexts, up.flow, down, *key) : nullptr;
            outcomes[d][i] =
                detectors[d]->detect_with_context(up, down, context);
          }
        },
        threads);
    // Reduce sequentially so the statistics are schedule-independent.
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      std::size_t detected = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes[d]) {
        detected += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_correlated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].detection_rate =
          static_cast<double>(detected) / static_cast<double>(dataset.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes[d].size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }

  if (request.run_false_positive) {
    const sscor::metrics::ScopedTimer timer("eval.false_positive");
    const auto pairs = dataset.sample_fp_pairs(dataset.config().fp_pairs);
    std::vector<std::vector<DetectionOutcome>> outcomes(
        detectors.size(), std::vector<DetectionOutcome>(pairs.size()));
    parallel_for(
        pairs.size(),
        [&](std::size_t k) {
          const auto& [i, j] = pairs[k];
          const WatermarkedFlow& up = dataset.upstream(i);
          const Flow& down = downstream[j];
          std::vector<std::pair<MatchContextKey, MatchContext>> contexts;
          for (std::size_t d = 0; d < detectors.size(); ++d) {
            const auto key = detectors[d]->shared_match_key();
            const MatchContext* context =
                key ? &context_for(contexts, up.flow, down, *key) : nullptr;
            outcomes[d][k] =
                detectors[d]->detect_with_context(up, down, context);
          }
        },
        threads);
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      std::size_t false_positives = 0;
      std::uint64_t packets_accessed = 0;
      for (const auto& outcome : outcomes[d]) {
        false_positives += outcome.correlated;
        packets_accessed += outcome.cost;
        metrics[d].cost_uncorrelated.add(static_cast<double>(outcome.cost));
      }
      metrics[d].false_positive_rate =
          static_cast<double>(false_positives) /
          static_cast<double>(pairs.size());
      sscor::metrics::counter("eval.detections_run").add(outcomes[d].size());
      sscor::metrics::counter("eval.packets_accessed").add(packets_accessed);
    }
  }
  return metrics;
}

}  // namespace sscor::experiment
