#include "sscor/experiment/dataset.hpp"

#include <cmath>
#include <memory>

#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/rng.hpp"

namespace sscor::experiment {
namespace {

std::unique_ptr<traffic::FlowGenerator> make_generator(Corpus corpus) {
  switch (corpus) {
    case Corpus::kInteractive:
      return std::make_unique<traffic::InteractiveSessionModel>();
    case Corpus::kTcplib:
      return std::make_unique<traffic::TcplibTelnetModel>();
  }
  throw InternalError("unhandled corpus");
}

}  // namespace

std::string to_string(Corpus corpus) {
  switch (corpus) {
    case Corpus::kInteractive:
      return "interactive (Bell-Labs substitute)";
    case Corpus::kTcplib:
      return "tcplib telnet (synthetic)";
  }
  return "unknown";
}

Dataset Dataset::build(const ExperimentConfig& config) {
  const metrics::ScopedTimer timer("dataset.build");
  metrics::counter("dataset.flows_generated").add(config.flows);
  Dataset dataset;
  dataset.config_ = config;
  dataset.flows_.reserve(config.flows);
  const auto generator = make_generator(config.corpus);

  for (std::size_t i = 0; i < config.flows; ++i) {
    const std::uint64_t flow_seed = mix_seeds(config.master_seed, i);
    // Flows all start near t=0 (with sub-second jitter) so that any two
    // overlap in time, as concurrently captured traces do.
    Rng jitter_rng(mix_seeds(flow_seed, 0xb00f));
    const TimeUs start = jitter_rng.uniform_duration(millis(900));
    Flow raw = generator->generate(config.packets_per_flow, start, flow_seed);
    raw.set_id("trace-" + std::to_string(i));

    Rng wm_rng(mix_seeds(flow_seed, 0x3a7e));
    const Watermark watermark =
        Watermark::random(config.watermark.bits, wm_rng);
    // Independent per-flow watermarking key (the location secret).
    const Embedder embedder(config.watermark, mix_seeds(flow_seed, 0x6b65));
    dataset.flows_.push_back(embedder.embed(raw, watermark));
  }
  return dataset;
}

Flow Dataset::downstream(std::size_t i, DurationUs max_perturbation,
                         double chaff_rate) const {
  require(i < flows_.size(), "flow index out of range");
  metrics::counter("dataset.downstream_generated").add(1);
  const std::uint64_t flow_seed = mix_seeds(config_.master_seed, i);
  const auto pert_tag = static_cast<std::uint64_t>(max_perturbation);
  const auto chaff_tag =
      static_cast<std::uint64_t>(std::llround(chaff_rate * 1000.0));
  const std::uint64_t point_seed =
      mix_seeds(flow_seed, mix_seeds(pert_tag, chaff_tag));

  const traffic::UniformPerturber perturber(max_perturbation,
                                            mix_seeds(point_seed, 1));
  Flow out = perturber.apply(flows_[i].flow);
  if (chaff_rate > 0.0) {
    const traffic::PoissonChaffInjector chaff(chaff_rate,
                                              mix_seeds(point_seed, 2));
    out = chaff.apply(out);
  }
  return out;
}

std::vector<Flow> Dataset::downstream_all(DurationUs max_perturbation,
                                          double chaff_rate) const {
  std::vector<Flow> out;
  out.reserve(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    out.push_back(downstream(i, max_perturbation, chaff_rate));
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> Dataset::sample_fp_pairs(
    std::size_t count) const {
  require(flows_.size() >= 2, "need at least two flows for FP pairs");
  const std::size_t all = flows_.size() * (flows_.size() - 1);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  if (count >= all) {
    pairs.reserve(all);
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      for (std::size_t j = 0; j < flows_.size(); ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
    return pairs;
  }
  Rng rng(mix_seeds(config_.master_seed, 0xfa1e));
  pairs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto i =
        static_cast<std::size_t>(rng.uniform_u64(flows_.size()));
    auto j = static_cast<std::size_t>(rng.uniform_u64(flows_.size() - 1));
    if (j >= i) ++j;
    pairs.emplace_back(i, j);
  }
  return pairs;
}

}  // namespace sscor::experiment
