// Experiment configuration — the paper's Table 1 plus dataset scaling.

#pragma once

#include <cstdint>
#include <string>

#include "sscor/util/time.hpp"
#include "sscor/watermark/params.hpp"

namespace sscor::experiment {

/// Which trace corpus substitute to generate (DESIGN.md §6).
enum class Corpus {
  kInteractive,  ///< Bell-Labs substitute: 91 SSH/Telnet session flows
  kTcplib,       ///< synthetic substitute: tcplib-style telnet flows
};

std::string to_string(Corpus corpus);

struct ExperimentConfig {
  // ---- Table 1 ----
  WatermarkParams watermark;               // 24 bits, r=4, d=1, a=600ms
  std::uint32_t hamming_threshold = 7;     // WM threshold
  std::uint64_t cost_bound = 1'000'000;    // Greedy* bound
  DurationUs zhang_threshold = seconds(std::int64_t{3});

  // ---- dataset scaling ----
  Corpus corpus = Corpus::kInteractive;
  std::size_t flows = 91;             // 91 real traces / 100 tcplib traces
  std::size_t packets_per_flow = 1000;  // "all traces have more than 1,000"
  /// Ordered uncorrelated pairs sampled per sweep point for the false-
  /// positive rate (the paper uses all 91*90; sampling keeps bench runtime
  /// bounded — pass --full to use every pair).
  std::size_t fp_pairs = 2000;
  std::uint64_t master_seed = 20050605;  // ICDCS'05
  /// Worker threads for the evaluation loops (0 = hardware concurrency,
  /// 1 = single-threaded).  Results are independent of this setting.
  unsigned threads = 0;

  /// Returns a copy with a different corpus.
  ExperimentConfig with_corpus(Corpus c) const {
    ExperimentConfig out = *this;
    out.corpus = c;
    return out;
  }
};

/// The paper's sweep axes.
inline constexpr double kChaffRates[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5,
                                         3.0, 3.5, 4.0, 4.5, 5.0};
inline constexpr std::int64_t kMaxDelaysSeconds[] = {0, 1, 2, 3, 4,
                                                     5, 6, 7, 8};
inline constexpr DurationUs kFig3FixedDelay = 7 * kMicrosPerSecond;
inline constexpr double kFig4FixedChaff = 3.0;

}  // namespace sscor::experiment
