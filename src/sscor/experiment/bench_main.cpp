#include "sscor/experiment/bench_main.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string_view>

#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/trace.hpp"

namespace sscor::experiment {
namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--flows=N] [--packets=N] [--fp-pairs=N] [--seed=N]\n"
      "          [--corpus=interactive|tcplib] [--full] [--csv=PATH]\n"
      "          [--threads=N] [--metrics] [--metrics-json=PATH]\n"
      "          [--trace=PATH] [--trace-spans=PATH]\n"
      "          [--checkpoint=PATH] [--resume]\n"
      "  --flows        number of traces (default 91; paper: 91)\n"
      "  --packets      packets per trace (default 1000; paper: >1000)\n"
      "  --fp-pairs     sampled uncorrelated pairs per point (default 2000)\n"
      "  --full         evaluate every uncorrelated pair (n*(n-1), slow)\n"
      "  --corpus       trace generator (default interactive)\n"
      "  --threads      evaluation worker threads (default: all cores)\n"
      "  --metrics      print the run-metrics table after the sweep\n"
      "  --metrics-json write the run-metrics snapshot as JSON\n"
      "  --trace        write per-detect decode introspection as JSONL\n"
      "  --trace-spans  write span timings as Chrome trace JSON (Perfetto)\n"
      "  --checkpoint   journal completed sweep points (crash-safe JSONL)\n"
      "  --resume       replay the checkpoint, recompute missing points\n",
      argv0);
  std::exit(2);
}

bool consume(std::string_view arg, std::string_view prefix,
             std::string_view& value) {
  if (!arg.starts_with(prefix)) return false;
  value = arg.substr(prefix.size());
  return true;
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv,
                                 ExperimentConfig defaults) {
  BenchOptions options;
  options.config = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (consume(arg, "--flows=", value)) {
      options.config.flows = std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--packets=", value)) {
      options.config.packets_per_flow =
          std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--fp-pairs=", value)) {
      options.config.fp_pairs = std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--seed=", value)) {
      options.config.master_seed = std::strtoull(value.data(), nullptr, 10);
    } else if (consume(arg, "--threads=", value)) {
      options.config.threads =
          static_cast<unsigned>(std::strtoul(value.data(), nullptr, 10));
    } else if (consume(arg, "--metrics-json=", value)) {
      options.metrics_json = std::string(value);
    } else if (consume(arg, "--trace=", value)) {
      options.trace_path = std::string(value);
    } else if (consume(arg, "--trace-spans=", value)) {
      options.trace_spans_path = std::string(value);
    } else if (consume(arg, "--csv=", value)) {
      options.csv_path = std::string(value);
    } else if (consume(arg, "--checkpoint=", value)) {
      options.checkpoint = std::string(value);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (consume(arg, "--corpus=", value)) {
      if (value == "interactive") {
        options.config.corpus = Corpus::kInteractive;
      } else if (value == "tcplib") {
        options.config.corpus = Corpus::kTcplib;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if (options.full) {
    options.config.fp_pairs =
        options.config.flows * (options.config.flows - 1);
  }
  return options;
}

void write_metrics_json(const std::string& path) {
  // Written atomically (temp file + rename) because the watch daemon
  // rewrites this file mid-run while a monitoring job may be reading it: a
  // reader must see the previous complete snapshot or the new one, never a
  // truncated JSON prefix.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw IoError("cannot open metrics JSON output: " + tmp);
    out << metrics::snapshot().to_json();
    out.flush();
    if (!out) throw IoError("failed writing metrics JSON: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path);
  }
}

int run_figure_bench(const std::string& figure_id, const std::string& title,
                     const BenchOptions& options, const SweepSpec& spec,
                     const std::string& expectation) {
  try {
    std::printf("== %s: %s ==\n", figure_id.c_str(), title.c_str());
    std::printf("metric: %s\n", to_string(spec.metric).c_str());
    std::printf("corpus: %s | flows: %zu | packets/flow: %zu"
                " | fp pairs/point: %zu | seed: %llu\n\n",
                to_string(options.config.corpus).c_str(),
                options.config.flows, options.config.packets_per_flow,
                options.config.fp_pairs,
                static_cast<unsigned long long>(options.config.master_seed));

    const auto progress = [](std::size_t index, std::size_t count,
                             const std::string& label) {
      std::fprintf(stderr, "[%zu/%zu] %s\n", index + 1, count,
                   label.c_str());
    };
    if (!options.trace_path.empty()) trace::set_decode_enabled(true);
    if (!options.trace_spans_path.empty()) trace::set_spans_enabled(true);
    SweepControl control;
    control.checkpoint.path = options.checkpoint;
    control.checkpoint.resume = options.resume;
    if (options.resume && options.checkpoint.empty()) {
      throw InvalidArgument("--resume requires --checkpoint=PATH");
    }
    TextTable table({"-"});
    {
      const metrics::ScopedTimer timer("bench." + figure_id);
      table = run_sweep(options.config, spec, progress, control);
    }
    std::printf("%s\n", table.to_string().c_str());
    if (!options.trace_path.empty()) {
      trace::write_decode_jsonl(options.trace_path);
      std::printf("decode trace written: %s (%zu records)\n",
                  options.trace_path.c_str(), trace::decode_record_count());
    }
    if (!options.trace_spans_path.empty()) {
      trace::write_chrome_json(options.trace_spans_path);
      std::printf("span trace written: %s\n",
                  options.trace_spans_path.c_str());
    }

    const std::string csv =
        options.csv_path.empty() ? figure_id + ".csv" : options.csv_path;
    table.write_csv(csv);
    std::printf("csv written: %s\n", csv.c_str());
    if (options.metrics) {
      std::printf("\nrun metrics:\n%s\n",
                  metrics::snapshot().to_table().to_string().c_str());
    }
    if (!options.metrics_json.empty()) {
      write_metrics_json(options.metrics_json);
      std::printf("metrics json written: %s\n",
                  options.metrics_json.c_str());
    }
    if (!expectation.empty()) {
      std::printf("\npaper expectation: %s\n", expectation.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace sscor::experiment
