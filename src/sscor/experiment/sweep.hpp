// Sweep drivers that regenerate the paper's figures 3-10.
//
// Each figure is one metric over one swept axis with the other parameter
// fixed; run_sweep produces the table of series (one column per detector)
// that the corresponding bench binary prints and writes as CSV.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sscor/experiment/evaluation.hpp"
#include "sscor/util/table.hpp"

namespace sscor::experiment {

enum class Metric {
  kDetectionRate,
  kFalsePositiveRate,
  kCostCorrelated,
  kCostUncorrelated,
};

std::string to_string(Metric metric);

enum class SweepAxis {
  kChaffRate,  ///< sweep lambda_c, Delta fixed   (figures 3, 5, 7, 9)
  kMaxDelay,   ///< sweep Delta, lambda_c fixed   (figures 4, 6, 8, 10)
};

struct SweepSpec {
  Metric metric = Metric::kDetectionRate;
  SweepAxis axis = SweepAxis::kChaffRate;
  /// The fixed parameter: Delta when sweeping chaff, lambda_c when
  /// sweeping delay.
  DurationUs fixed_delay = kFig3FixedDelay;
  double fixed_chaff = kFig4FixedChaff;
  /// Axis values; defaults to the paper's grids when empty.
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
};

/// Progress callback: (point index, point count, human-readable label).
/// Invocations are serialised, but when `config.threads != 1` sweep points
/// run concurrently, so indices may arrive out of order.
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const std::string&)>;

/// Runs the sweep over the paper's five-detector line-up and returns the
/// table: first column the swept axis, one column per detector.  Sweep
/// points are dispatched concurrently through the shared thread pool
/// (`config.threads`; 1 = fully serial); every cell is a deterministic
/// function of (config, spec), so the table is byte-identical for every
/// thread count.
TextTable run_sweep(const ExperimentConfig& config, const SweepSpec& spec,
                    const ProgressFn& progress = {});

}  // namespace sscor::experiment
