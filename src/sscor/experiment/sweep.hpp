// Sweep drivers that regenerate the paper's figures 3-10.
//
// Each figure is one metric over one swept axis with the other parameter
// fixed; run_sweep produces the table of series (one column per detector)
// that the corresponding bench binary prints and writes as CSV.
// run_sweep_shard is the multi-process variant: N workers journal disjoint
// subsets of the same grid into a shared directory and the merge
// reconstructs the serial table byte for byte (DESIGN.md §15).

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sscor/experiment/checkpoint.hpp"
#include "sscor/experiment/evaluation.hpp"
#include "sscor/util/cancellation.hpp"
#include "sscor/util/table.hpp"

namespace sscor::experiment {

enum class Metric {
  kDetectionRate,
  kFalsePositiveRate,
  kCostCorrelated,
  kCostUncorrelated,
};

std::string to_string(Metric metric);

enum class SweepAxis {
  kChaffRate,  ///< sweep lambda_c, Delta fixed   (figures 3, 5, 7, 9)
  kMaxDelay,   ///< sweep Delta, lambda_c fixed   (figures 4, 6, 8, 10)
};

struct SweepSpec {
  Metric metric = Metric::kDetectionRate;
  SweepAxis axis = SweepAxis::kChaffRate;
  /// The fixed parameter: Delta when sweeping chaff, lambda_c when
  /// sweeping delay.
  DurationUs fixed_delay = kFig3FixedDelay;
  double fixed_chaff = kFig4FixedChaff;
  /// Axis values; defaults to the paper's grids when empty.
  std::vector<double> chaff_rates;
  std::vector<DurationUs> max_delays;
};

/// Progress callback: (point index, point count, human-readable label).
/// Invocations are serialised, but when `config.threads != 1` sweep points
/// run concurrently, so indices may arrive out of order.
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const std::string&)>;

/// Resilience controls for run_sweep; the default is a plain,
/// uncheckpointed, uncancellable sweep identical to the previous behaviour.
struct SweepControl {
  /// Crash-safe journaling of completed points (checkpoint.hpp).  In the
  /// sharded entry point `path` is ignored (derived from the directory);
  /// resume / fsync / the SIGKILL hook apply unchanged.
  CheckpointOptions checkpoint;
  /// Cooperative cancel polled between points (not owned).  When it trips,
  /// in-flight points finish and are journaled, unstarted points never run,
  /// and run_sweep throws Cancelled — a later resume picks up exactly the
  /// missing points.
  const CancellationToken* cancel = nullptr;
};

/// One worker's identity in a sharded cluster sweep.
struct ShardSpec {
  std::size_t index = 0;
  /// Total workers; 0 disables sharding.
  std::size_t count = 0;
  /// Shared directory of per-shard journals (shard-<i>-of-<N>.jsonl).
  std::string journal_dir;
  /// After finishing its own partition (point % count == index, plus any
  /// point it previously claimed), the worker opportunistically claims and
  /// computes points no other shard has completed or claimed — so a dead
  /// worker's unclaimed share still finishes.  A stolen point is pinned to
  /// its claimer: if the claimer dies mid-compute, resume *that* shard to
  /// finish it.
  bool steal = true;

  bool enabled() const { return count > 0; }
};

/// Fingerprint of everything that determines the sweep's values — the
/// experiment config minus scheduling knobs (`threads`) plus the resolved
/// spec — used to refuse resuming a checkpoint against a different sweep.
std::uint64_t sweep_fingerprint(const ExperimentConfig& config,
                                const SweepSpec& spec);

/// Runs the sweep over the paper's five-detector line-up and returns the
/// table: first column the swept axis, one column per detector.  Sweep
/// points are dispatched concurrently through the shared thread pool
/// (`config.threads`; 1 = fully serial); every cell is a deterministic
/// function of (config, spec), so the table is byte-identical for every
/// thread count — and, with checkpointing, across any kill/resume split.
TextTable run_sweep(const ExperimentConfig& config, const SweepSpec& spec,
                    const ProgressFn& progress = {},
                    const SweepControl& control = {});

/// One worker of an N-process cluster sweep: journals its share of the
/// grid (owned partition, previously claimed points, then stolen points)
/// into `shard.journal_dir` and, when the directory holds every point at
/// exit, returns the merged table — byte-identical to the serial
/// single-process run.  Returns nullopt while other shards' points are
/// still outstanding (merge later with scan_journal_dir + merge_cluster).
/// Honors control.checkpoint.resume / .fsync / .sigkill_after_points;
/// control.checkpoint.path is ignored.  Throws IoError when the directory
/// belongs to a different sweep or a different shard count.
std::optional<TextTable> run_sweep_shard(const ExperimentConfig& config,
                                         const SweepSpec& spec,
                                         const ShardSpec& shard,
                                         const ProgressFn& progress = {},
                                         const SweepControl& control = {});

}  // namespace sscor::experiment
