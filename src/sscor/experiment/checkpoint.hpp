// Crash-safe sweep checkpointing and the cluster journal directory.
//
// A full paper sweep is minutes of CPU; a crash (OOM kill, power loss,
// impatient ^C) used to throw all completed points away.  run_sweep can now
// journal each finished point to an append-only checkpoint file and, on
// --resume, replay the journal and recompute only the missing points — the
// resulting table is byte-identical to an uninterrupted run.  A *directory*
// of per-shard journals turns the same format into a multi-process work
// queue: N `sweep --shard i/N` workers journal disjoint points and a
// deterministic merge reconstructs the serial table (DESIGN.md §15).
//
// Format: JSON Lines, one self-validating record per line:
//
//     {"crc32":"9a0b1c2d","data":{...}}\n
//
// The CRC-32 (IEEE, reflected 0xEDB88320) covers exactly the serialized
// `data` substring, so any torn or bit-flipped line is detected in
// isolation.  The first line is a header record carrying a fingerprint of
// (ExperimentConfig, SweepSpec) minus scheduling knobs plus the table's
// column names; body records carry one completed point's row, or — in
// sharded journals — a claim marking a point this shard has taken from
// another shard's partition.  Each append is written and flushed as a
// single line, so after a SIGKILL the file is a valid journal plus at most
// one torn tail line, which the loader drops and append_to truncates
// before writing anything new (a blind append would glue the next record
// onto the torn fragment and corrupt both).  Corrupt *body* lines only
// cost their point (it is recomputed); a corrupt or mismatched header
// fails the resume with IoError — silently recomputing under a different
// config would masquerade as the old sweep.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sscor/util/journal.hpp"
#include "sscor/util/table.hpp"

namespace sscor::experiment {

// The journalling core (checksummed JSONL lines, torn-tail repair, the
// append-only writer, the verifying loader) lives in util/journal so the
// streaming daemon's WAL and snapshots (stream/durability) share it
// without a stream -> experiment dependency; these aliases keep the sweep
// code and its callers on their historical names.
using journal::crc32;
using journal::fnv1a64;
using journal::repair_torn_tail;
using CheckpointJournal = journal::Journal;
using LoadedCheckpoint = journal::LoadedJournal;

/// Reads and verifies `path`.  Throws IoError when the file cannot be read
/// or its header line is missing/corrupt; body corruption is tolerated.
inline LoadedCheckpoint load_checkpoint(const std::string& path) {
  return journal::load_journal(path);
}

/// Checkpointing knobs carried into run_sweep via SweepControl.
struct CheckpointOptions {
  /// Journal path; empty disables checkpointing entirely.  Ignored by the
  /// sharded entry point, which derives per-shard paths from the journal
  /// directory.
  std::string path;
  /// Replay the journal and recompute only missing points.  When false an
  /// existing journal is truncated and the sweep starts fresh.
  bool resume = false;
  /// Pay one fsync per appended record (see the durability contract in
  /// DESIGN.md §15).  Off by default: a single-machine sweep only needs to
  /// survive process death, not power loss.
  bool fsync = false;
  /// Crash-injection test hook: raise(SIGKILL) immediately after this many
  /// body records have been appended (< 0 = disabled).  Used by the
  /// kill-and-resume tests and the chaos harness; never set in production.
  std::int64_t sigkill_after_points = -1;

  bool enabled() const { return !path.empty(); }
};

// --- sweep record codecs -------------------------------------------------
// The sweep stores plain row data; these helpers keep the JSON shape in one
// place.  Decoders return false on malformed input instead of throwing (a
// corrupt-but-checksummed record only costs a recompute), but they are
// strict: the canonical encoder shape must match exactly, end of payload
// included — trailing garbage or an overflowing numeric field is a reject,
// never a silently mangled value.

/// {"fingerprint":"<16hex>","points":N,"columns":M,"names":["c",...]}
/// `names` carries the table's column headers so a journal directory can be
/// merged into the full table without re-deriving the detector line-up;
/// decode accepts the pre-cluster 3-field form (names left empty).
std::string encode_checkpoint_header(std::uint64_t fingerprint,
                                     std::size_t points, std::size_t columns,
                                     const std::vector<std::string>& names = {});
bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns,
                              std::vector<std::string>& names);
bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns);

/// {"point":P,"row":["cell",...]}
std::string encode_checkpoint_row(std::size_t point,
                                  const std::vector<std::string>& row);
bool decode_checkpoint_row(const std::string& data, std::size_t& point,
                           std::vector<std::string>& row);

/// {"claim":P,"shard":S} — shard S has taken point P from another shard's
/// partition.  Advisory: claims stop other live workers from duplicating
/// the steal, and on resume pin the point back onto shard S.
std::string encode_checkpoint_claim(std::size_t point, std::size_t shard);
bool decode_checkpoint_claim(const std::string& data, std::size_t& point,
                             std::size_t& shard);

// --- cluster journal directory -------------------------------------------

/// Canonical per-shard journal filename: "shard-<i>-of-<N>.jsonl".
std::string shard_journal_name(std::size_t index, std::size_t count);
/// Strictly parses a shard journal filename; rejects anything else
/// (including index >= count).
bool parse_shard_journal_name(std::string_view name, std::size_t& index,
                              std::size_t& count);

/// Everything one pass over a journal directory learns: the shared header,
/// every verified row folded by point index, and every claim.  Duplicate
/// identical rows (two workers raced the same steal) are tolerated and
/// counted; two *different* rows for one point mean the directory mixes
/// incompatible runs and scanning throws.
struct ClusterScan {
  std::uint64_t fingerprint = 0;
  std::size_t points = 0;
  std::size_t columns = 0;
  std::size_t shard_count = 0;  ///< N from the filenames; 0 when no files
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;  ///< by point; valid iff have
  std::vector<char> have;
  std::vector<std::size_t> row_shard;  ///< shard that journaled rows[p]
  /// (shard, point) claim records in (shard, file order).
  std::vector<std::pair<std::size_t, std::size_t>> claims;
  std::size_t shard_files = 0;     ///< journals folded in
  std::size_t skipped_files = 0;   ///< unreadable-header journals skipped
  std::size_t dropped_lines = 0;   ///< torn/corrupt body lines across files
  std::size_t duplicate_rows = 0;  ///< identical re-journaled rows
  std::size_t duplicate_claims = 0;

  bool complete() const {
    for (const char h : have) {
      if (h == 0) return false;
    }
    return true;
  }
  std::vector<std::size_t> missing_points() const {
    std::vector<std::size_t> missing;
    for (std::size_t p = 0; p < have.size(); ++p) {
      if (have[p] == 0) missing.push_back(p);
    }
    return missing;
  }
  bool claimed(std::size_t point) const {
    for (const auto& [shard, p] : claims) {
      if (p == point) return true;
    }
    return false;
  }
};

/// Scans `dir` for shard-<i>-of-<N>.jsonl journals (sorted by shard index,
/// so the fold is deterministic regardless of directory order) and folds
/// every verified record.  Journals whose header cannot be read (a worker
/// that died mid-header-write) are skipped and counted — their points just
/// recompute.  Throws IoError on a fingerprint/shape/shard-count mismatch
/// across files or on two conflicting rows for one point.  An empty or
/// missing directory returns a scan with shard_files == 0.
ClusterScan scan_journal_dir(const std::string& dir);

/// Deterministic merge: rebuilds the full sweep table from a complete scan,
/// byte-identical to the serial single-process run.  Throws IoError when
/// points are missing (naming them) or when the headers predate the
/// cluster format (no column names).
TextTable merge_cluster(const ClusterScan& scan);

}  // namespace sscor::experiment
