// Crash-safe sweep checkpointing.
//
// A full paper sweep is minutes of CPU; a crash (OOM kill, power loss,
// impatient ^C) used to throw all completed points away.  run_sweep can now
// journal each finished point to an append-only checkpoint file and, on
// --resume, replay the journal and recompute only the missing points — the
// resulting table is byte-identical to an uninterrupted run.
//
// Format: JSON Lines, one self-validating record per line:
//
//     {"crc32":"9a0b1c2d","data":{...}}\n
//
// The CRC-32 (IEEE, reflected 0xEDB88320) covers exactly the serialized
// `data` substring, so any torn or bit-flipped line is detected in
// isolation.  The first line is a header record carrying a fingerprint of
// (ExperimentConfig, SweepSpec) minus scheduling knobs; body records each
// carry one completed point's row.  Each append is written and flushed as a
// single line, so after a SIGKILL the file is a valid journal plus at most
// one torn tail line, which the loader drops.  Corrupt *body* lines only
// cost their point (it is recomputed); a corrupt or mismatched header fails
// the resume with IoError — silently recomputing under a different config
// would masquerade as the old sweep.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sscor::experiment {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
std::uint32_t crc32(std::string_view data);

/// FNV-1a 64-bit hash; the building block of the config fingerprint.
std::uint64_t fnv1a64(std::string_view data);

/// Checkpointing knobs carried into run_sweep via SweepControl.
struct CheckpointOptions {
  /// Journal path; empty disables checkpointing entirely.
  std::string path;
  /// Replay `path` and recompute only missing points.  When false an
  /// existing journal is truncated and the sweep starts fresh.
  bool resume = false;
  /// Crash-injection test hook: raise(SIGKILL) immediately after this many
  /// body records have been appended (< 0 = disabled).  Used by the
  /// kill-and-resume test and the chaos harness; never set in production.
  std::int64_t sigkill_after_points = -1;

  bool enabled() const { return !path.empty(); }
};

/// Append-only writer.  Not thread-safe; callers serialise appends (the
/// sweep holds a mutex around journal writes).
class CheckpointJournal {
 public:
  /// Opens `path` truncated and writes the header record.
  static CheckpointJournal create(const std::string& path,
                                  const std::string& header_data);
  /// Opens `path` for appending after a successful load (header already
  /// present and verified by the caller).
  static CheckpointJournal append_to(const std::string& path);

  CheckpointJournal(CheckpointJournal&& other) noexcept;
  CheckpointJournal& operator=(CheckpointJournal&& other) noexcept;
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;
  ~CheckpointJournal();

  /// Appends one checksummed record line and flushes it to the OS.  A
  /// process killed right after append() returns cannot lose the record
  /// short of the whole machine going down.
  void append(const std::string& data);

  /// Body records appended through this writer (excludes the header).
  std::uint64_t appended() const { return appended_; }

 private:
  explicit CheckpointJournal(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
  std::uint64_t appended_ = 0;
};

/// A parsed journal: the header record's data plus every body record whose
/// checksum verified, in file order.  `dropped_lines` counts torn/corrupt
/// body lines that were skipped.
struct LoadedCheckpoint {
  std::string header;
  std::vector<std::string> records;
  std::size_t dropped_lines = 0;
};

/// Reads and verifies `path`.  Throws IoError when the file cannot be read
/// or its header line is missing/corrupt; body corruption is tolerated.
LoadedCheckpoint load_checkpoint(const std::string& path);

// --- sweep record codecs -------------------------------------------------
// The sweep stores plain row data; these helpers keep the JSON shape in one
// place.  Decoders are tolerant: they return false on malformed input
// instead of throwing (a corrupt-but-checksummed record only costs a
// recompute).

/// {"fingerprint":"<16hex>","points":N,"columns":M}
std::string encode_checkpoint_header(std::uint64_t fingerprint,
                                     std::size_t points, std::size_t columns);
bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns);

/// {"point":P,"row":["cell",...]}
std::string encode_checkpoint_row(std::size_t point,
                                  const std::vector<std::string>& row);
bool decode_checkpoint_row(const std::string& data, std::size_t& point,
                           std::vector<std::string>& row);

}  // namespace sscor::experiment
