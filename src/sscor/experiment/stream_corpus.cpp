#include "sscor/experiment/stream_corpus.hpp"

#include <algorithm>

#include "sscor/experiment/dataset.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/util/rng.hpp"

namespace sscor::experiment {

net::FiveTuple stream_corpus_tuple(std::size_t index) {
  return net::FiveTuple{
      net::Ipv4Address::from_octets(
          10, 1, static_cast<std::uint8_t>(index / 250),
          static_cast<std::uint8_t>(index % 250 + 2)),
      net::Ipv4Address::from_octets(10, 99, 0, 1),
      static_cast<std::uint16_t>(20000 + index % 40000), 22,
      net::IpProtocol::kTcp};
}

StreamCorpus make_stream_corpus(const StreamCorpusConfig& config) {
  ExperimentConfig experiment;
  experiment.watermark = config.watermark;
  experiment.corpus = config.corpus;
  experiment.flows = config.watermarked_flows;
  experiment.packets_per_flow = config.packets_per_flow;
  experiment.master_seed = config.seed;

  StreamCorpus corpus;
  if (config.watermarked_flows > 0) {
    const Dataset dataset = Dataset::build(experiment);
    corpus.upstreams.reserve(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      corpus.upstreams.push_back(dataset.upstream(i));
      corpus.downstream.push_back(
          dataset.downstream(i, config.max_perturbation, config.chaff_rate));
    }
  }
  for (std::size_t d = 0; d < config.decoy_flows; ++d) {
    // Decoys share the corpus model but not the watermark pipeline; offset
    // the seed space so no decoy duplicates a carrier trace.
    const std::uint64_t decoy_seed =
        mix_seeds(config.seed, mix_seeds(0xdec0755eedULL, d));
    Rng jitter_rng(mix_seeds(decoy_seed, 0xb00f));
    const TimeUs start = jitter_rng.uniform_duration(millis(900));
    Flow decoy;
    if (config.corpus == Corpus::kInteractive) {
      decoy = traffic::InteractiveSessionModel().generate(
          config.packets_per_flow, start, decoy_seed);
    } else {
      decoy = traffic::TcplibTelnetModel().generate(config.packets_per_flow,
                                                    start, decoy_seed);
    }
    corpus.downstream.push_back(std::move(decoy));
  }

  corpus.tuples.reserve(corpus.downstream.size());
  for (std::size_t k = 0; k < corpus.downstream.size(); ++k) {
    corpus.tuples.push_back(stream_corpus_tuple(k));
    corpus.downstream[k].set_id(corpus.tuples[k].to_string());
  }

  for (std::size_t k = 0; k < corpus.downstream.size(); ++k) {
    for (const PacketRecord& packet : corpus.downstream[k].packets()) {
      corpus.packets.push_back(stream::StreamPacket{corpus.tuples[k], packet});
    }
  }
  // Stable sort: ties keep (flow index, packet index) order, so the merged
  // stream — and everything downstream of it — is deterministic.
  std::stable_sort(corpus.packets.begin(), corpus.packets.end(),
                   [](const stream::StreamPacket& a,
                      const stream::StreamPacket& b) {
                     return a.packet.timestamp < b.packet.timestamp;
                   });
  return corpus;
}

}  // namespace sscor::experiment
