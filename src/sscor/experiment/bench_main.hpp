// Shared main() scaffolding for the figure-reproduction bench binaries:
// command-line scaling flags, the standard header block, CSV output next to
// the binary, run-metrics reporting, and the paper-expectation footnote.

#pragma once

#include <string>

#include "sscor/experiment/sweep.hpp"

namespace sscor::experiment {

struct BenchOptions {
  ExperimentConfig config;
  std::string csv_path;      ///< empty: derive from the figure id
  bool full = false;         ///< --full: paper-scale FP pairs (all n*(n-1))
  bool metrics = false;      ///< --metrics: print the run-metrics table
  std::string metrics_json;  ///< --metrics-json=PATH: dump metrics as JSON
  std::string trace_path;    ///< --trace=PATH: decode-introspection JSONL
  std::string trace_spans_path;  ///< --trace-spans=PATH: Chrome trace JSON
  std::string checkpoint;    ///< --checkpoint=PATH: crash-safe point journal
  bool resume = false;       ///< --resume: replay the checkpoint first
};

/// Parses --flows=N --packets=N --fp-pairs=N --seed=N --threads=N --full
/// --csv=PATH --corpus=interactive|tcplib --metrics --metrics-json=PATH
/// --trace=PATH --trace-spans=PATH --checkpoint=PATH --resume.  Exits with
/// a usage message on bad flags.
BenchOptions parse_bench_options(int argc, char** argv,
                                 ExperimentConfig defaults = {});

/// Writes the current metrics snapshot as JSON to `path` (throws IoError on
/// failure) — how BENCH_sweeps.json and --metrics-json files are produced.
void write_metrics_json(const std::string& path);

/// Runs one figure sweep end to end: prints the header, runs with progress
/// on stderr, prints the table, writes the CSV, reports metrics when asked,
/// prints `expectation`.  Returns the process exit code.
int run_figure_bench(const std::string& figure_id, const std::string& title,
                     const BenchOptions& options, const SweepSpec& spec,
                     const std::string& expectation);

}  // namespace sscor::experiment
