// Shared main() scaffolding for the figure-reproduction bench binaries:
// command-line scaling flags, the standard header block, CSV output next to
// the binary, and the paper-expectation footnote.

#pragma once

#include <string>

#include "sscor/experiment/sweep.hpp"

namespace sscor::experiment {

struct BenchOptions {
  ExperimentConfig config;
  std::string csv_path;  ///< empty: derive from the figure id
  bool full = false;     ///< --full: paper-scale FP pairs (all n*(n-1))
};

/// Parses --flows=N --packets=N --fp-pairs=N --seed=N --full --csv=PATH
/// --corpus=interactive|tcplib.  Exits with a usage message on bad flags.
BenchOptions parse_bench_options(int argc, char** argv,
                                 ExperimentConfig defaults = {});

/// Runs one figure sweep end to end: prints the header, runs with progress
/// on stderr, prints the table, writes the CSV, prints `expectation`.
/// Returns the process exit code.
int run_figure_bench(const std::string& figure_id, const std::string& title,
                     const BenchOptions& options, const SweepSpec& spec,
                     const std::string& expectation);

}  // namespace sscor::experiment
