#include "sscor/experiment/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "sscor/util/error.hpp"
#include "sscor/util/json.hpp"
#include "sscor/util/metrics.hpp"

namespace sscor::experiment {
namespace {

using journal::hex64;
using journal::parse_hex;

// ---- strict parsing of the sweep record shapes ---------------------------
// The encoder emits one canonical byte sequence per record kind, so the
// decoders demand exactly that shape, cursor-advancing over literal
// fragments.  Anything else — reordered keys, trailing garbage, an
// overflowing size — is a reject, never a guess.

/// Advances `pos` past `literal` iff `data` continues with it.
bool eat(std::string_view data, std::size_t& pos, std::string_view literal) {
  if (data.substr(pos, literal.size()) != literal) return false;
  pos += literal.size();
  return true;
}

/// Parses a decimal size at `pos`, advancing past it.  Rejects on uint64
/// overflow: a corrupt-but-checksummed 25-digit field must not wrap into a
/// plausible point index.
bool parse_size(std::string_view data, std::size_t& pos, std::size_t& out) {
  if (pos >= data.size() ||
      std::isdigit(static_cast<unsigned char>(data[pos])) == 0) {
    return false;
  }
  std::uint64_t value = 0;
  while (pos < data.size() &&
         std::isdigit(static_cast<unsigned char>(data[pos])) != 0) {
    const auto digit = static_cast<std::uint64_t>(data[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
    ++pos;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

/// Decodes the JSON string starting at `pos` (which must point at the
/// opening quote); advances `pos` past the closing quote.
bool parse_string_at(std::string_view data, std::size_t& pos,
                     std::string& out) {
  if (pos >= data.size() || data[pos] != '"') return false;
  out.clear();
  ++pos;
  while (pos < data.size()) {
    const char ch = data[pos];
    if (ch == '"') {
      ++pos;
      return true;
    }
    if (ch == '\\') {
      if (pos + 1 >= data.size()) return false;
      const char esc = data[pos + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'f': out += '\f'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos + 5 >= data.size()) return false;
          std::uint64_t code = 0;
          if (!parse_hex(data.substr(pos + 2, 4), code)) return false;
          // The encoder only emits \u00XX for control bytes.
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          pos += 4;
          break;
        }
        default:
          return false;
      }
      pos += 2;
      continue;
    }
    out += ch;
    ++pos;
  }
  return false;  // unterminated
}

/// Parses a JSON array of strings starting at the '[' and advances past
/// the closing ']'.
bool parse_string_array(std::string_view data, std::size_t& pos,
                        std::vector<std::string>& out) {
  out.clear();
  if (!eat(data, pos, "[")) return false;
  if (eat(data, pos, "]")) return true;
  while (true) {
    std::string item;
    if (!parse_string_at(data, pos, item)) return false;
    out.push_back(std::move(item));
    if (pos < data.size() && data[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  return eat(data, pos, "]");
}

}  // namespace

std::string encode_checkpoint_header(std::uint64_t fingerprint,
                                     std::size_t points, std::size_t columns,
                                     const std::vector<std::string>& names) {
  std::string out = "{\"fingerprint\":\"" + hex64(fingerprint) +
                    "\",\"points\":" + std::to_string(points) +
                    ",\"columns\":" + std::to_string(columns);
  if (!names.empty()) {
    out += ",\"names\":[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ',';
      json::append_escaped(out, names[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns,
                              std::vector<std::string>& names) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"fingerprint\":\"")) return false;
  if (pos + 16 > data.size() ||
      !parse_hex(std::string_view(data).substr(pos, 16), fingerprint)) {
    return false;
  }
  pos += 16;
  if (!eat(data, pos, "\",\"points\":")) return false;
  if (!parse_size(data, pos, points)) return false;
  if (!eat(data, pos, ",\"columns\":")) return false;
  if (!parse_size(data, pos, columns)) return false;
  names.clear();
  if (eat(data, pos, ",\"names\":")) {
    if (!parse_string_array(data, pos, names)) return false;
  }
  return eat(data, pos, "}") && pos == data.size();
}

bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns) {
  std::vector<std::string> names;
  return decode_checkpoint_header(data, fingerprint, points, columns, names);
}

std::string encode_checkpoint_row(std::size_t point,
                                  const std::vector<std::string>& row) {
  std::string out = "{\"point\":" + std::to_string(point) + ",\"row\":[";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    json::append_escaped(out, row[i]);
  }
  out += "]}";
  return out;
}

bool decode_checkpoint_row(const std::string& data, std::size_t& point,
                           std::vector<std::string>& row) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"point\":")) return false;
  if (!parse_size(data, pos, point)) return false;
  if (!eat(data, pos, ",\"row\":")) return false;
  if (!parse_string_array(data, pos, row)) return false;
  return eat(data, pos, "}") && pos == data.size();
}

std::string encode_checkpoint_claim(std::size_t point, std::size_t shard) {
  return "{\"claim\":" + std::to_string(point) +
         ",\"shard\":" + std::to_string(shard) + "}";
}

bool decode_checkpoint_claim(const std::string& data, std::size_t& point,
                             std::size_t& shard) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"claim\":")) return false;
  if (!parse_size(data, pos, point)) return false;
  if (!eat(data, pos, ",\"shard\":")) return false;
  if (!parse_size(data, pos, shard)) return false;
  return eat(data, pos, "}") && pos == data.size();
}

std::string shard_journal_name(std::size_t index, std::size_t count) {
  return "shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".jsonl";
}

bool parse_shard_journal_name(std::string_view name, std::size_t& index,
                              std::size_t& count) {
  std::size_t pos = 0;
  if (!eat(name, pos, "shard-")) return false;
  if (!parse_size(name, pos, index)) return false;
  if (!eat(name, pos, "-of-")) return false;
  if (!parse_size(name, pos, count)) return false;
  if (!eat(name, pos, ".jsonl") || pos != name.size()) return false;
  return count > 0 && index < count;
}

ClusterScan scan_journal_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  ClusterScan scan;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return scan;  // nothing journaled yet

  // Collect (index, path) for every well-formed shard filename, then sort
  // by index: directory iteration order is unspecified, and the fold must
  // be deterministic for the merge to be.
  std::vector<std::pair<std::size_t, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::size_t index = 0, count = 0;
    const std::string name = entry.path().filename().string();
    if (!parse_shard_journal_name(name, index, count)) continue;
    if (scan.shard_count == 0) {
      scan.shard_count = count;
    } else if (scan.shard_count != count) {
      throw IoError("journal directory mixes shard counts (" +
                    std::to_string(scan.shard_count) + " and " +
                    std::to_string(count) + "): " + dir);
    }
    files.emplace_back(index, entry.path());
  }
  std::sort(files.begin(), files.end());

  bool saw_header = false;
  for (const auto& [shard, path] : files) {
    LoadedCheckpoint loaded;
    try {
      loaded = load_checkpoint(path.string());
    } catch (const IoError&) {
      // A worker that died before its header line hit the disk leaves an
      // empty or torn-header journal; its points simply recompute.
      ++scan.skipped_files;
      continue;
    }
    std::uint64_t fingerprint = 0;
    std::size_t points = 0, columns = 0;
    std::vector<std::string> names;
    if (!decode_checkpoint_header(loaded.header, fingerprint, points, columns,
                                  names)) {
      ++scan.skipped_files;
      continue;
    }
    if (!saw_header) {
      scan.fingerprint = fingerprint;
      scan.points = points;
      scan.columns = columns;
      scan.names = std::move(names);
      scan.rows.assign(points, {});
      scan.have.assign(points, 0);
      scan.row_shard.assign(points, 0);
      saw_header = true;
    } else if (fingerprint != scan.fingerprint || points != scan.points ||
               columns != scan.columns || names != scan.names) {
      throw IoError("shard journal written by a different sweep: " +
                    path.string());
    }
    scan.dropped_lines += loaded.dropped_lines;
    for (const std::string& record : loaded.records) {
      std::size_t p = 0;
      std::vector<std::string> row;
      std::size_t claim_shard = 0;
      if (decode_checkpoint_row(record, p, row)) {
        if (p >= scan.points || row.size() != scan.columns) {
          ++scan.dropped_lines;
          continue;
        }
        if (scan.have[p] != 0) {
          if (scan.rows[p] != row) {
            throw IoError("conflicting rows for point " + std::to_string(p) +
                          " (shards " + std::to_string(scan.row_shard[p]) +
                          " and " + std::to_string(shard) + "): " + dir);
          }
          ++scan.duplicate_rows;
          continue;
        }
        scan.rows[p] = std::move(row);
        scan.have[p] = 1;
        scan.row_shard[p] = shard;
      } else if (decode_checkpoint_claim(record, p, claim_shard)) {
        if (p >= scan.points) {
          ++scan.dropped_lines;
          continue;
        }
        const auto entry = std::make_pair(claim_shard, p);
        if (std::find(scan.claims.begin(), scan.claims.end(), entry) !=
            scan.claims.end()) {
          ++scan.duplicate_claims;
          continue;
        }
        scan.claims.push_back(entry);
      } else {
        ++scan.dropped_lines;
      }
    }
    ++scan.shard_files;
  }
  return scan;
}

TextTable merge_cluster(const ClusterScan& scan) {
  if (scan.shard_files == 0) {
    throw IoError("no readable shard journals to merge");
  }
  if (scan.names.empty()) {
    throw IoError(
        "shard journal headers carry no column names (pre-cluster format); "
        "re-run the sweep to merge");
  }
  if (scan.names.size() != scan.columns) {
    throw IoError("shard journal header is inconsistent: " +
                  std::to_string(scan.names.size()) + " names for " +
                  std::to_string(scan.columns) + " columns");
  }
  if (!scan.complete()) {
    std::string missing;
    for (const std::size_t p : scan.missing_points()) {
      if (!missing.empty()) missing += ',';
      missing += std::to_string(p);
    }
    throw IoError("cluster journal is incomplete; missing point(s) " +
                  missing + " — resume the owning/claiming worker(s) first");
  }
  TextTable table(scan.names);
  for (std::size_t p = 0; p < scan.points; ++p) {
    table.add_row(scan.rows[p]);
  }
  return table;
}

}  // namespace sscor::experiment
