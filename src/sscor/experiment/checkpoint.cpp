#include "sscor/experiment/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "sscor/util/error.hpp"
#include "sscor/util/json.hpp"
#include "sscor/util/metrics.hpp"

namespace sscor::experiment {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::string_view kCrcPrefix = "{\"crc32\":\"";
constexpr std::string_view kDataPrefix = "\",\"data\":";

std::string hex32(std::uint32_t value) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08" PRIx32, value);
  return buf;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  out = 0;
  if (s.empty() || s.size() > 16) return false;
  for (const char ch : s) {
    out <<= 4;
    if (ch >= '0' && ch <= '9') {
      out |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      out |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

/// Splits one journal line into its verified data payload.  Returns false
/// on any structural or checksum failure.
bool parse_line(std::string_view line, std::string& data) {
  if (line.size() < kCrcPrefix.size() + 8 + kDataPrefix.size() + 1) {
    return false;
  }
  if (line.substr(0, kCrcPrefix.size()) != kCrcPrefix) return false;
  const std::string_view crc_hex = line.substr(kCrcPrefix.size(), 8);
  if (line.substr(kCrcPrefix.size() + 8, kDataPrefix.size()) != kDataPrefix) {
    return false;
  }
  if (line.back() != '}') return false;
  const std::string_view payload = line.substr(
      kCrcPrefix.size() + 8 + kDataPrefix.size(),
      line.size() - (kCrcPrefix.size() + 8 + kDataPrefix.size()) - 1);
  std::uint64_t expected = 0;
  if (!parse_hex(crc_hex, expected)) return false;
  if (crc32(payload) != static_cast<std::uint32_t>(expected)) return false;
  data.assign(payload);
  return true;
}

// ---- strict parsing of the sweep record shapes ---------------------------
// The encoder emits one canonical byte sequence per record kind, so the
// decoders demand exactly that shape, cursor-advancing over literal
// fragments.  Anything else — reordered keys, trailing garbage, an
// overflowing size — is a reject, never a guess.

/// Advances `pos` past `literal` iff `data` continues with it.
bool eat(std::string_view data, std::size_t& pos, std::string_view literal) {
  if (data.substr(pos, literal.size()) != literal) return false;
  pos += literal.size();
  return true;
}

/// Parses a decimal size at `pos`, advancing past it.  Rejects on uint64
/// overflow: a corrupt-but-checksummed 25-digit field must not wrap into a
/// plausible point index.
bool parse_size(std::string_view data, std::size_t& pos, std::size_t& out) {
  if (pos >= data.size() ||
      std::isdigit(static_cast<unsigned char>(data[pos])) == 0) {
    return false;
  }
  std::uint64_t value = 0;
  while (pos < data.size() &&
         std::isdigit(static_cast<unsigned char>(data[pos])) != 0) {
    const auto digit = static_cast<std::uint64_t>(data[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
    ++pos;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

/// Decodes the JSON string starting at `pos` (which must point at the
/// opening quote); advances `pos` past the closing quote.
bool parse_string_at(std::string_view data, std::size_t& pos,
                     std::string& out) {
  if (pos >= data.size() || data[pos] != '"') return false;
  out.clear();
  ++pos;
  while (pos < data.size()) {
    const char ch = data[pos];
    if (ch == '"') {
      ++pos;
      return true;
    }
    if (ch == '\\') {
      if (pos + 1 >= data.size()) return false;
      const char esc = data[pos + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'f': out += '\f'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos + 5 >= data.size()) return false;
          std::uint64_t code = 0;
          if (!parse_hex(data.substr(pos + 2, 4), code)) return false;
          // The encoder only emits \u00XX for control bytes.
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          pos += 4;
          break;
        }
        default:
          return false;
      }
      pos += 2;
      continue;
    }
    out += ch;
    ++pos;
  }
  return false;  // unterminated
}

/// Parses a JSON array of strings starting at the '[' and advances past
/// the closing ']'.
bool parse_string_array(std::string_view data, std::size_t& pos,
                        std::vector<std::string>& out) {
  out.clear();
  if (!eat(data, pos, "[")) return false;
  if (eat(data, pos, "]")) return true;
  while (true) {
    std::string item;
    if (!parse_string_at(data, pos, item)) return false;
    out.push_back(std::move(item));
    if (pos < data.size() && data[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  return eat(data, pos, "]");
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::size_t repair_torn_tail(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) return 0;  // nothing to repair
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    throw IoError("cannot seek checkpoint file: " + path);
  }
  const long size = std::ftell(file);
  if (size <= 0) {
    std::fclose(file);
    return 0;
  }
  // Walk backwards in chunks until the last '\n'; a journal's tail is
  // normally the final record, so the first chunk almost always suffices.
  long keep = 0;  // bytes up to and including the last newline
  char buffer[4096];
  long end = size;
  while (end > 0 && keep == 0) {
    const long begin = std::max(0L, end - static_cast<long>(sizeof buffer));
    const auto span = static_cast<std::size_t>(end - begin);
    if (std::fseek(file, begin, SEEK_SET) != 0 ||
        std::fread(buffer, 1, span, file) != span) {
      std::fclose(file);
      throw IoError("cannot read checkpoint tail: " + path);
    }
    for (std::size_t i = span; i-- > 0;) {
      if (buffer[i] == '\n') {
        keep = begin + static_cast<long>(i) + 1;
        break;
      }
    }
    end = begin;
  }
  if (keep == size) {
    std::fclose(file);
    return 0;  // clean tail: the file ends in '\n'
  }
  const int fd = ::fileno(file);
  if (fd < 0 || ::ftruncate(fd, keep) != 0) {
    std::fclose(file);
    throw IoError("cannot truncate torn checkpoint tail: " + path);
  }
  std::fclose(file);
  const auto removed = static_cast<std::size_t>(size - keep);
  metrics::counter("checkpoint.torn_tail_bytes").add(removed);
  return removed;
}

CheckpointJournal CheckpointJournal::create(const std::string& path,
                                            const std::string& header_data,
                                            bool fsync) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw IoError("cannot create checkpoint file: " + path);
  }
  CheckpointJournal journal(file, fsync);
  journal.append(header_data);
  journal.appended_ = 0;  // the header is not a body record
  return journal;
}

CheckpointJournal CheckpointJournal::append_to(const std::string& path,
                                               bool fsync) {
  // A SIGKILL mid-write leaves a torn final line; appending blindly would
  // glue the next record onto the fragment, producing one CRC-corrupt
  // line that loses both records on the next load.  Truncate the
  // fragment first so every append starts on a fresh line.
  repair_torn_tail(path);
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw IoError("cannot open checkpoint file for append: " + path);
  }
  return CheckpointJournal(file, fsync);
}

CheckpointJournal::CheckpointJournal(CheckpointJournal&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      fsync_(other.fsync_),
      appended_(other.appended_) {}

CheckpointJournal& CheckpointJournal::operator=(
    CheckpointJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    fsync_ = other.fsync_;
    appended_ = other.appended_;
  }
  return *this;
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointJournal::append(const std::string& data) {
  check_invariant(file_ != nullptr, "append on a moved-from journal");
  const metrics::ScopedTimer timer("checkpoint.write_us");
  std::string line;
  line.reserve(data.size() + 32);
  line.append(kCrcPrefix);
  line.append(hex32(crc32(data)));
  line.append(kDataPrefix);
  line.append(data);
  line.append("}\n");
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    throw IoError("checkpoint append failed (disk full?)");
  }
  if (fsync_) {
    const int fd = ::fileno(file_);
    if (fd < 0 || ::fsync(fd) != 0) {
      throw IoError("checkpoint fsync failed");
    }
    metrics::counter("checkpoint.fsyncs").add();
  }
  ++appended_;
  metrics::counter("checkpoint.records").add();
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw IoError("cannot read checkpoint file: " + path);
  }
  std::string contents;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) throw IoError("error reading checkpoint file: " + path);

  LoadedCheckpoint loaded;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < contents.size()) {
    auto newline = contents.find('\n', pos);
    const bool torn_tail = newline == std::string::npos;
    if (torn_tail) newline = contents.size();
    const std::string_view line(contents.data() + pos, newline - pos);
    pos = newline + 1;
    if (line.empty()) continue;
    std::string data;
    if (!parse_line(line, data)) {
      if (!saw_header) {
        // A journal whose very first line is unreadable is not this sweep's
        // journal (or lost its header to corruption): refuse to resume.
        throw IoError("checkpoint header corrupt in " + path);
      }
      // A torn final line is the expected SIGKILL signature; a corrupt
      // middle line just costs that point.
      ++loaded.dropped_lines;
      continue;
    }
    if (!saw_header) {
      loaded.header = std::move(data);
      saw_header = true;
    } else {
      loaded.records.push_back(std::move(data));
    }
  }
  if (!saw_header) {
    throw IoError("checkpoint file has no header record: " + path);
  }
  return loaded;
}

std::string encode_checkpoint_header(std::uint64_t fingerprint,
                                     std::size_t points, std::size_t columns,
                                     const std::vector<std::string>& names) {
  std::string out = "{\"fingerprint\":\"" + hex64(fingerprint) +
                    "\",\"points\":" + std::to_string(points) +
                    ",\"columns\":" + std::to_string(columns);
  if (!names.empty()) {
    out += ",\"names\":[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ',';
      json::append_escaped(out, names[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns,
                              std::vector<std::string>& names) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"fingerprint\":\"")) return false;
  if (pos + 16 > data.size() ||
      !parse_hex(std::string_view(data).substr(pos, 16), fingerprint)) {
    return false;
  }
  pos += 16;
  if (!eat(data, pos, "\",\"points\":")) return false;
  if (!parse_size(data, pos, points)) return false;
  if (!eat(data, pos, ",\"columns\":")) return false;
  if (!parse_size(data, pos, columns)) return false;
  names.clear();
  if (eat(data, pos, ",\"names\":")) {
    if (!parse_string_array(data, pos, names)) return false;
  }
  return eat(data, pos, "}") && pos == data.size();
}

bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns) {
  std::vector<std::string> names;
  return decode_checkpoint_header(data, fingerprint, points, columns, names);
}

std::string encode_checkpoint_row(std::size_t point,
                                  const std::vector<std::string>& row) {
  std::string out = "{\"point\":" + std::to_string(point) + ",\"row\":[";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    json::append_escaped(out, row[i]);
  }
  out += "]}";
  return out;
}

bool decode_checkpoint_row(const std::string& data, std::size_t& point,
                           std::vector<std::string>& row) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"point\":")) return false;
  if (!parse_size(data, pos, point)) return false;
  if (!eat(data, pos, ",\"row\":")) return false;
  if (!parse_string_array(data, pos, row)) return false;
  return eat(data, pos, "}") && pos == data.size();
}

std::string encode_checkpoint_claim(std::size_t point, std::size_t shard) {
  return "{\"claim\":" + std::to_string(point) +
         ",\"shard\":" + std::to_string(shard) + "}";
}

bool decode_checkpoint_claim(const std::string& data, std::size_t& point,
                             std::size_t& shard) {
  std::size_t pos = 0;
  if (!eat(data, pos, "{\"claim\":")) return false;
  if (!parse_size(data, pos, point)) return false;
  if (!eat(data, pos, ",\"shard\":")) return false;
  if (!parse_size(data, pos, shard)) return false;
  return eat(data, pos, "}") && pos == data.size();
}

std::string shard_journal_name(std::size_t index, std::size_t count) {
  return "shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".jsonl";
}

bool parse_shard_journal_name(std::string_view name, std::size_t& index,
                              std::size_t& count) {
  std::size_t pos = 0;
  if (!eat(name, pos, "shard-")) return false;
  if (!parse_size(name, pos, index)) return false;
  if (!eat(name, pos, "-of-")) return false;
  if (!parse_size(name, pos, count)) return false;
  if (!eat(name, pos, ".jsonl") || pos != name.size()) return false;
  return count > 0 && index < count;
}

ClusterScan scan_journal_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  ClusterScan scan;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return scan;  // nothing journaled yet

  // Collect (index, path) for every well-formed shard filename, then sort
  // by index: directory iteration order is unspecified, and the fold must
  // be deterministic for the merge to be.
  std::vector<std::pair<std::size_t, fs::path>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::size_t index = 0, count = 0;
    const std::string name = entry.path().filename().string();
    if (!parse_shard_journal_name(name, index, count)) continue;
    if (scan.shard_count == 0) {
      scan.shard_count = count;
    } else if (scan.shard_count != count) {
      throw IoError("journal directory mixes shard counts (" +
                    std::to_string(scan.shard_count) + " and " +
                    std::to_string(count) + "): " + dir);
    }
    files.emplace_back(index, entry.path());
  }
  std::sort(files.begin(), files.end());

  bool saw_header = false;
  for (const auto& [shard, path] : files) {
    LoadedCheckpoint loaded;
    try {
      loaded = load_checkpoint(path.string());
    } catch (const IoError&) {
      // A worker that died before its header line hit the disk leaves an
      // empty or torn-header journal; its points simply recompute.
      ++scan.skipped_files;
      continue;
    }
    std::uint64_t fingerprint = 0;
    std::size_t points = 0, columns = 0;
    std::vector<std::string> names;
    if (!decode_checkpoint_header(loaded.header, fingerprint, points, columns,
                                  names)) {
      ++scan.skipped_files;
      continue;
    }
    if (!saw_header) {
      scan.fingerprint = fingerprint;
      scan.points = points;
      scan.columns = columns;
      scan.names = std::move(names);
      scan.rows.assign(points, {});
      scan.have.assign(points, 0);
      scan.row_shard.assign(points, 0);
      saw_header = true;
    } else if (fingerprint != scan.fingerprint || points != scan.points ||
               columns != scan.columns || names != scan.names) {
      throw IoError("shard journal written by a different sweep: " +
                    path.string());
    }
    scan.dropped_lines += loaded.dropped_lines;
    for (const std::string& record : loaded.records) {
      std::size_t p = 0;
      std::vector<std::string> row;
      std::size_t claim_shard = 0;
      if (decode_checkpoint_row(record, p, row)) {
        if (p >= scan.points || row.size() != scan.columns) {
          ++scan.dropped_lines;
          continue;
        }
        if (scan.have[p] != 0) {
          if (scan.rows[p] != row) {
            throw IoError("conflicting rows for point " + std::to_string(p) +
                          " (shards " + std::to_string(scan.row_shard[p]) +
                          " and " + std::to_string(shard) + "): " + dir);
          }
          ++scan.duplicate_rows;
          continue;
        }
        scan.rows[p] = std::move(row);
        scan.have[p] = 1;
        scan.row_shard[p] = shard;
      } else if (decode_checkpoint_claim(record, p, claim_shard)) {
        if (p >= scan.points) {
          ++scan.dropped_lines;
          continue;
        }
        const auto entry = std::make_pair(claim_shard, p);
        if (std::find(scan.claims.begin(), scan.claims.end(), entry) !=
            scan.claims.end()) {
          ++scan.duplicate_claims;
          continue;
        }
        scan.claims.push_back(entry);
      } else {
        ++scan.dropped_lines;
      }
    }
    ++scan.shard_files;
  }
  return scan;
}

TextTable merge_cluster(const ClusterScan& scan) {
  if (scan.shard_files == 0) {
    throw IoError("no readable shard journals to merge");
  }
  if (scan.names.empty()) {
    throw IoError(
        "shard journal headers carry no column names (pre-cluster format); "
        "re-run the sweep to merge");
  }
  if (scan.names.size() != scan.columns) {
    throw IoError("shard journal header is inconsistent: " +
                  std::to_string(scan.names.size()) + " names for " +
                  std::to_string(scan.columns) + " columns");
  }
  if (!scan.complete()) {
    std::string missing;
    for (const std::size_t p : scan.missing_points()) {
      if (!missing.empty()) missing += ',';
      missing += std::to_string(p);
    }
    throw IoError("cluster journal is incomplete; missing point(s) " +
                  missing + " — resume the owning/claiming worker(s) first");
  }
  TextTable table(scan.names);
  for (std::size_t p = 0; p < scan.points; ++p) {
    table.add_row(scan.rows[p]);
  }
  return table;
}

}  // namespace sscor::experiment
