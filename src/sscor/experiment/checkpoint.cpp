#include "sscor/experiment/checkpoint.hpp"

#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "sscor/util/error.hpp"
#include "sscor/util/json.hpp"
#include "sscor/util/metrics.hpp"

namespace sscor::experiment {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::string_view kCrcPrefix = "{\"crc32\":\"";
constexpr std::string_view kDataPrefix = "\",\"data\":";

std::string hex32(std::uint32_t value) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08" PRIx32, value);
  return buf;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  out = 0;
  if (s.empty() || s.size() > 16) return false;
  for (const char ch : s) {
    out <<= 4;
    if (ch >= '0' && ch <= '9') {
      out |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      out |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

/// Splits one journal line into its verified data payload.  Returns false
/// on any structural or checksum failure.
bool parse_line(std::string_view line, std::string& data) {
  if (line.size() < kCrcPrefix.size() + 8 + kDataPrefix.size() + 1) {
    return false;
  }
  if (line.substr(0, kCrcPrefix.size()) != kCrcPrefix) return false;
  const std::string_view crc_hex = line.substr(kCrcPrefix.size(), 8);
  if (line.substr(kCrcPrefix.size() + 8, kDataPrefix.size()) != kDataPrefix) {
    return false;
  }
  if (line.back() != '}') return false;
  const std::string_view payload = line.substr(
      kCrcPrefix.size() + 8 + kDataPrefix.size(),
      line.size() - (kCrcPrefix.size() + 8 + kDataPrefix.size()) - 1);
  std::uint64_t expected = 0;
  if (!parse_hex(crc_hex, expected)) return false;
  if (crc32(payload) != static_cast<std::uint32_t>(expected)) return false;
  data.assign(payload);
  return true;
}

// ---- minimal tolerant parsing of the sweep record shapes ----------------

/// Scans `data` for `"key":` at top nesting level and returns the position
/// just past the colon, or npos.
std::size_t find_key(std::string_view data, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = data.find(needle);
  return pos == std::string_view::npos ? std::string_view::npos
                                       : pos + needle.size();
}

bool parse_size_at(std::string_view data, std::size_t pos, std::size_t& out) {
  if (pos >= data.size() ||
      std::isdigit(static_cast<unsigned char>(data[pos])) == 0) {
    return false;
  }
  std::uint64_t value = 0;
  while (pos < data.size() &&
         std::isdigit(static_cast<unsigned char>(data[pos])) != 0) {
    value = value * 10 + static_cast<std::uint64_t>(data[pos] - '0');
    ++pos;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

/// Decodes the JSON string starting at `pos` (which must point at the
/// opening quote); advances `pos` past the closing quote.
bool parse_string_at(std::string_view data, std::size_t& pos,
                     std::string& out) {
  if (pos >= data.size() || data[pos] != '"') return false;
  out.clear();
  ++pos;
  while (pos < data.size()) {
    const char ch = data[pos];
    if (ch == '"') {
      ++pos;
      return true;
    }
    if (ch == '\\') {
      if (pos + 1 >= data.size()) return false;
      const char esc = data[pos + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'f': out += '\f'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos + 5 >= data.size()) return false;
          std::uint64_t code = 0;
          if (!parse_hex(data.substr(pos + 2, 4), code)) return false;
          // The encoder only emits \u00XX for control bytes.
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          pos += 4;
          break;
        }
        default:
          return false;
      }
      pos += 2;
      continue;
    }
    out += ch;
    ++pos;
  }
  return false;  // unterminated
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

CheckpointJournal CheckpointJournal::create(const std::string& path,
                                            const std::string& header_data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw IoError("cannot create checkpoint file: " + path);
  }
  CheckpointJournal journal(file);
  journal.append(header_data);
  journal.appended_ = 0;  // the header is not a body record
  return journal;
}

CheckpointJournal CheckpointJournal::append_to(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw IoError("cannot open checkpoint file for append: " + path);
  }
  return CheckpointJournal(file);
}

CheckpointJournal::CheckpointJournal(CheckpointJournal&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      appended_(other.appended_) {}

CheckpointJournal& CheckpointJournal::operator=(
    CheckpointJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    appended_ = other.appended_;
  }
  return *this;
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointJournal::append(const std::string& data) {
  check_invariant(file_ != nullptr, "append on a moved-from journal");
  const metrics::ScopedTimer timer("checkpoint.write_us");
  std::string line;
  line.reserve(data.size() + 32);
  line.append(kCrcPrefix);
  line.append(hex32(crc32(data)));
  line.append(kDataPrefix);
  line.append(data);
  line.append("}\n");
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    throw IoError("checkpoint append failed (disk full?)");
  }
  ++appended_;
  metrics::counter("checkpoint.records").add();
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw IoError("cannot read checkpoint file: " + path);
  }
  std::string contents;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) throw IoError("error reading checkpoint file: " + path);

  LoadedCheckpoint loaded;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < contents.size()) {
    auto newline = contents.find('\n', pos);
    const bool torn_tail = newline == std::string::npos;
    if (torn_tail) newline = contents.size();
    const std::string_view line(contents.data() + pos, newline - pos);
    pos = newline + 1;
    if (line.empty()) continue;
    std::string data;
    if (!parse_line(line, data)) {
      if (!saw_header) {
        // A journal whose very first line is unreadable is not this sweep's
        // journal (or lost its header to corruption): refuse to resume.
        throw IoError("checkpoint header corrupt in " + path);
      }
      // A torn final line is the expected SIGKILL signature; a corrupt
      // middle line just costs that point.
      ++loaded.dropped_lines;
      continue;
    }
    if (!saw_header) {
      loaded.header = std::move(data);
      saw_header = true;
    } else {
      loaded.records.push_back(std::move(data));
    }
  }
  if (!saw_header) {
    throw IoError("checkpoint file has no header record: " + path);
  }
  return loaded;
}

std::string encode_checkpoint_header(std::uint64_t fingerprint,
                                     std::size_t points,
                                     std::size_t columns) {
  std::string out = "{\"fingerprint\":\"" + hex64(fingerprint) +
                    "\",\"points\":" + std::to_string(points) +
                    ",\"columns\":" + std::to_string(columns) + "}";
  return out;
}

bool decode_checkpoint_header(const std::string& data,
                              std::uint64_t& fingerprint, std::size_t& points,
                              std::size_t& columns) {
  const std::size_t fp_pos = find_key(data, "fingerprint");
  const std::size_t points_pos = find_key(data, "points");
  const std::size_t columns_pos = find_key(data, "columns");
  if (fp_pos == std::string::npos || points_pos == std::string::npos ||
      columns_pos == std::string::npos) {
    return false;
  }
  std::size_t cursor = fp_pos;
  std::string fp_hex;
  if (!parse_string_at(data, cursor, fp_hex)) return false;
  if (!parse_hex(fp_hex, fingerprint)) return false;
  return parse_size_at(data, points_pos, points) &&
         parse_size_at(data, columns_pos, columns);
}

std::string encode_checkpoint_row(std::size_t point,
                                  const std::vector<std::string>& row) {
  std::string out = "{\"point\":" + std::to_string(point) + ",\"row\":[";
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    json::append_escaped(out, row[i]);
  }
  out += "]}";
  return out;
}

bool decode_checkpoint_row(const std::string& data, std::size_t& point,
                           std::vector<std::string>& row) {
  const std::size_t point_pos = find_key(data, "point");
  const std::size_t row_pos = find_key(data, "row");
  if (point_pos == std::string::npos || row_pos == std::string::npos) {
    return false;
  }
  if (!parse_size_at(data, point_pos, point)) return false;
  row.clear();
  std::size_t cursor = row_pos;
  if (cursor >= data.size() || data[cursor] != '[') return false;
  ++cursor;
  if (cursor < data.size() && data[cursor] == ']') return true;
  while (cursor < data.size()) {
    std::string cell;
    if (!parse_string_at(data, cursor, cell)) return false;
    row.push_back(std::move(cell));
    if (cursor >= data.size()) return false;
    if (data[cursor] == ',') {
      ++cursor;
      continue;
    }
    return data[cursor] == ']';
  }
  return false;
}

}  // namespace sscor::experiment
