// Dataset construction: watermarked upstream flows and their adversarially
// transformed downstream flows, exactly as the paper's evaluation does it:
// embed a random watermark into each trace, add uniform timing perturbation
// with maximum equal to the timing constraint Delta, then add Poisson chaff
// at rate lambda_c.  Everything is a deterministic function of the master
// seed.

#pragma once

#include <vector>

#include "sscor/experiment/config.hpp"
#include "sscor/flow/flow.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor::experiment {

class Dataset {
 public:
  /// Generates `config.flows` traces from the configured corpus and embeds
  /// a fresh random watermark into each.
  static Dataset build(const ExperimentConfig& config);

  std::size_t size() const { return flows_.size(); }

  const WatermarkedFlow& upstream(std::size_t i) const {
    return flows_.at(i);
  }

  /// The downstream flow of trace `i` under maximum perturbation
  /// `max_perturbation` and chaff rate `chaff_rate` (pkt/s); deterministic
  /// in (master seed, i, parameters).
  Flow downstream(std::size_t i, DurationUs max_perturbation,
                  double chaff_rate) const;

  /// Downstream flows of every trace at one sweep point.
  std::vector<Flow> downstream_all(DurationUs max_perturbation,
                                   double chaff_rate) const;

  /// Deterministic sample of `count` ordered pairs (i, j), i != j, used for
  /// the false-positive evaluation (upstream i against downstream j).
  std::vector<std::pair<std::size_t, std::size_t>> sample_fp_pairs(
      std::size_t count) const;

  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  std::vector<WatermarkedFlow> flows_;
};

}  // namespace sscor::experiment
