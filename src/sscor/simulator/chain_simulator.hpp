// Stepping-stone chain simulator.
//
// The paper's scenario is a connection chain h1 -> h2 -> ... -> hn with an
// adversary on the relays and monitors on the links.  This module builds
// that scenario explicitly: each hop is a network link (propagation
// latency, bounded jitter, loss) followed by a relay (bounded holding
// delay, chaff injection), and the simulator returns the flow observed on
// *every* link, so detection can be run between any two monitoring points
// — exactly how a deployment taps the first and last links.
//
// Packet semantics: links and relays are FIFO; per-packet delays are
// bounded, so the end-to-end delay between any two links is bounded by the
// sum of the intermediate budgets (total_delay_budget() computes it — use
// it as the correlator's Delta).  Chaff injected by one relay is ordinary
// traffic to every later hop.  Loss violates the paper's assumption 1 and
// is off by default.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sscor/flow/flow.hpp"
#include "sscor/util/time.hpp"

namespace sscor::sim {

/// One network link between hosts.
struct LinkParams {
  DurationUs latency = millis(20);  ///< fixed propagation delay
  DurationUs jitter = millis(10);   ///< bounded queueing jitter (order-safe)
  double loss = 0.0;                ///< packet loss probability
};

/// One stepping-stone relay (the adversary's machine).
struct RelayParams {
  /// Maximum intentional holding delay (the paper's timing perturbation).
  DurationUs max_delay = seconds(std::int64_t{2});
  /// Chaff injection rate, packets per second.
  double chaff_rate = 0.0;
};

class SteppingStoneChain {
 public:
  /// `seed` drives every stochastic element of the chain.
  explicit SteppingStoneChain(std::uint64_t seed);

  /// Appends a hop: the link carrying traffic to the next relay, and that
  /// relay's behaviour.  Hops act in insertion order.
  void add_hop(const LinkParams& link, const RelayParams& relay);

  /// The link from the last relay to the destination (defaults to a plain
  /// LAN link when unset).
  void set_final_link(const LinkParams& link);

  std::size_t hops() const { return hops_.size(); }

  /// Sum of every delay bound between link `from` and link `to` (0 = the
  /// origin link, hops() = the final link): the timing constraint Delta a
  /// correlator between those monitors must use.
  DurationUs delay_budget(std::size_t from_link, std::size_t to_link) const;

  /// Observations of one run: element k is the flow as seen on link k
  /// (k = 0: between the origin and the first relay; k = hops(): the
  /// final link into the destination).
  struct Trace {
    std::vector<Flow> links;
  };

  /// Propagates `origin` through the chain.  Deterministic in the
  /// simulator seed and `run_id` (vary run_id for repeated runs).
  Trace run(const Flow& origin, std::uint64_t run_id = 0) const;

 private:
  struct Hop {
    LinkParams link;
    RelayParams relay;
  };

  std::uint64_t seed_;
  std::vector<Hop> hops_;
  LinkParams final_link_;
};

}  // namespace sscor::sim
