#include "sscor/simulator/chain_simulator.hpp"

#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/loss_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/rng.hpp"

namespace sscor::sim {
namespace {

/// Applies one link: fixed latency, bounded order-preserving jitter, loss.
Flow traverse_link(const Flow& input, const LinkParams& link,
                   std::uint64_t seed) {
  Flow current = input.shifted(link.latency);
  if (link.jitter > 0) {
    const traffic::UniformPerturber jitter(link.jitter,
                                           mix_seeds(seed, 0x11));
    current = jitter.apply(current);
  }
  if (link.loss > 0.0) {
    const traffic::LossRepacketizationModel loss(link.loss, 0,
                                                 mix_seeds(seed, 0x22));
    current = loss.apply(current);
  }
  return current;
}

/// Applies one relay: bounded holding delay plus chaff injection.
Flow traverse_relay(const Flow& input, const RelayParams& relay,
                    std::uint64_t seed) {
  Flow current = input;
  if (relay.max_delay > 0) {
    const traffic::UniformPerturber hold(relay.max_delay,
                                         mix_seeds(seed, 0x33));
    current = hold.apply(current);
  }
  if (relay.chaff_rate > 0.0) {
    const traffic::PoissonChaffInjector chaff(relay.chaff_rate,
                                              mix_seeds(seed, 0x44));
    current = chaff.apply(current);
  }
  return current;
}

}  // namespace

SteppingStoneChain::SteppingStoneChain(std::uint64_t seed) : seed_(seed) {}

void SteppingStoneChain::add_hop(const LinkParams& link,
                                 const RelayParams& relay) {
  require(link.latency >= 0 && link.jitter >= 0,
          "link delays must be non-negative");
  require(link.loss >= 0.0 && link.loss < 1.0, "loss must be in [0, 1)");
  require(relay.max_delay >= 0, "relay delay must be non-negative");
  require(relay.chaff_rate >= 0.0, "chaff rate must be non-negative");
  hops_.push_back(Hop{link, relay});
}

void SteppingStoneChain::set_final_link(const LinkParams& link) {
  final_link_ = link;
}

DurationUs SteppingStoneChain::delay_budget(std::size_t from_link,
                                            std::size_t to_link) const {
  require(from_link <= to_link && to_link <= hops_.size(),
          "link indices out of range");
  DurationUs budget = 0;
  for (std::size_t k = from_link; k < to_link; ++k) {
    // Crossing from link k to link k+1 means traversing relay k and the
    // next link.
    budget += hops_[k].relay.max_delay;
    const LinkParams& next =
        (k + 1 < hops_.size()) ? hops_[k + 1].link : final_link_;
    budget += next.latency + next.jitter;
  }
  return budget;
}

SteppingStoneChain::Trace SteppingStoneChain::run(
    const Flow& origin, std::uint64_t run_id) const {
  require(!hops_.empty(), "the chain needs at least one hop");
  Trace trace;
  trace.links.reserve(hops_.size() + 1);

  // Link 0: origin -> first relay.
  Flow current = traverse_link(
      origin, hops_.front().link,
      mix_seeds(seed_, mix_seeds(run_id, 0)));
  trace.links.push_back(current);

  for (std::size_t k = 0; k < hops_.size(); ++k) {
    const std::uint64_t hop_seed =
        mix_seeds(seed_, mix_seeds(run_id, 1000 + k));
    current = traverse_relay(current, hops_[k].relay, hop_seed);
    const LinkParams& next_link =
        (k + 1 < hops_.size()) ? hops_[k + 1].link : final_link_;
    current = traverse_link(current, next_link, mix_seeds(hop_seed, 0x99));
    trace.links.push_back(current);
  }
  return trace;
}

}  // namespace sscor::sim
