// Zhang & Paxson's ON/OFF correlation (USENIX Security 2000), the paper's
// reference [12], as an additional related-work baseline.
//
// Interactive flows alternate ON periods (activity) and OFF periods (idle
// longer than `idle_threshold`).  Two flows of the same connection chain
// end their OFF periods at nearly the same instants.  The detector counts
// OFF-period ends of the two flows that coincide within `coincidence_delta`
// and normalises by the smaller OFF count.

#pragma once

#include <vector>

#include "sscor/baselines/detector.hpp"
#include "sscor/util/time.hpp"

namespace sscor {

struct OnOffParams {
  /// An idle gap of at least this much starts an OFF period.
  DurationUs idle_threshold = millis(500);
  /// OFF-period ends within this of each other coincide.  Must cover the
  /// maximum delay between the monitoring points.
  DurationUs coincidence_delta = seconds(std::int64_t{7});
  /// Correlation score threshold for the stepping-stone decision.
  double score_threshold = 0.3;
  /// Minimum OFF periods per flow for a meaningful decision.
  std::size_t min_off_periods = 4;
};

struct OnOffResult {
  bool correlated = false;
  double score = 0.0;  ///< coincidences / min(off counts)
  std::uint64_t cost = 0;
};

/// Timestamps at which `flow`'s OFF periods end (the first packet after
/// each idle gap).
std::vector<TimeUs> off_period_ends(const Flow& flow,
                                    DurationUs idle_threshold);

OnOffResult onoff_correlate(const Flow& a, const Flow& b,
                            const OnOffParams& params);

class OnOffDetector final : public Detector {
 public:
  explicit OnOffDetector(OnOffParams params) : params_(params) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override {
    const auto r = onoff_correlate(watermarked.flow, suspicious, params_);
    return DetectionOutcome{r.correlated, r.cost};
  }

  std::string name() const override { return "OnOff"; }

 private:
  OnOffParams params_;
};

}  // namespace sscor
