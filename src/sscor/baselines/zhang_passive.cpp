#include "sscor/baselines/zhang_passive.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "sscor/matching/cost_meter.hpp"
#include "sscor/util/error.hpp"

namespace sscor {
namespace {

/// Attempts an order-preserving matching with every matched per-packet
/// delay in [delay_lo, delay_hi], allowing up to `max_skips` upstream
/// packets to stay unmatched.  Greedy earliest-feasible: pointwise
/// minimises the matched timestamps, so it succeeds whenever any such
/// matching exists.  On success returns the half-spread of the matched
/// delays.
std::optional<DurationUs> try_window(std::span<const TimeUs> up,
                                     std::span<const TimeUs> down,
                                     DurationUs delay_lo, DurationUs delay_hi,
                                     std::size_t max_skips, CostMeter& cost) {
  DurationUs min_delay = std::numeric_limits<DurationUs>::max();
  DurationUs max_delay = std::numeric_limits<DurationUs>::min();
  std::size_t skips = 0;
  std::size_t j = 0;
  for (const TimeUs t : up) {
    // Advance to the first unused downstream packet inside the window.
    while (j < down.size()) {
      cost.count();
      if (down[j] >= t + delay_lo) break;
      ++j;
    }
    if (j == down.size() || down[j] > t + delay_hi) {
      // No candidate for this packet; tolerate a bounded number of skips
      // (the pointer does not advance — later packets may still match).
      if (++skips > max_skips) return std::nullopt;
      continue;
    }
    const DurationUs delay = down[j] - t;
    min_delay = std::min(min_delay, delay);
    max_delay = std::max(max_delay, delay);
    ++j;  // each downstream packet matches at most one upstream packet
  }
  if (min_delay > max_delay) return std::nullopt;  // nothing matched
  return (max_delay - min_delay + 1) / 2;
}

}  // namespace

ZhangPassiveResult zhang_passive_correlate(const Flow& upstream,
                                           const Flow& downstream,
                                           const ZhangPassiveParams& params) {
  require(params.deviation_threshold >= 0, "threshold must be non-negative");
  require(params.max_delay >= 0, "max delay must be non-negative");

  ZhangPassiveResult result;
  require(params.grid_step > 0, "grid step must be positive");
  const auto max_skips = static_cast<std::size_t>(
      params.skip_tolerance * static_cast<double>(upstream.size()));
  if (upstream.empty() || downstream.empty() ||
      upstream.size() > downstream.size() + max_skips) {
    return result;  // enough matches are impossible
  }
  const std::vector<TimeUs>& up = upstream.timestamps();
  const std::vector<TimeUs>& down = downstream.timestamps();
  CostMeter cost;
  // The scheme reports the *smallest* deviation, so every candidate shift
  // over [0, max_delay] is scanned (no early exit on the first feasible
  // window) — this full minimisation is what makes the passive scheme
  // costly on correlated flows (paper figures 7/8).
  const DurationUs window_width = 2 * params.deviation_threshold;
  const DurationUs c_max = params.max_delay;
  for (DurationUs c = 0;; c += params.grid_step) {
    const DurationUs hi = std::min(params.max_delay, c + window_width);
    const auto deviation = try_window(up, down, c, hi, max_skips, cost);
    if (deviation && (!result.smallest_deviation ||
                      *deviation < *result.smallest_deviation)) {
      result.smallest_deviation = *deviation;
    }
    if (c >= c_max) break;
  }
  result.cost = cost.accesses();
  result.correlated = result.smallest_deviation.has_value() &&
                      *result.smallest_deviation <=
                          params.deviation_threshold;
  return result;
}

}  // namespace sscor
