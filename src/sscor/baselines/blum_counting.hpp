// Packet-counting baseline after Blum, Song & Venkataraman (RAID 2004),
// the paper's reference [1]: "Detection of interactive stepping stones
// with maximum delay bound: algorithms and confidence bounds".
//
// Idea: if f' relays f with per-packet delay at most Delta, then every
// packet of f has crossed by Delta later, so the cumulative counts obey
// n_down(t) >= n_up(t - Delta) at every instant (chaff only adds to the
// downstream count).  The detector samples the count difference
// n_up(t - Delta) - n_down(t) on a time grid and reports a stepping stone
// when its maximum stays at or below a small slack.  Chaff in the
// downstream direction can only *mask* deficits, so — like every passive
// counting scheme — its false-positive rate grows with the chaff rate.

#pragma once

#include "sscor/baselines/detector.hpp"
#include "sscor/util/time.hpp"

namespace sscor {

struct BlumCountingParams {
  /// The maximum tolerable delay Delta.
  DurationUs max_delay = seconds(std::int64_t{7});
  /// Sampling grid step.
  DurationUs grid_step = seconds(std::int64_t{1});
  /// Allowed count deficit (their confidence slack).
  std::int64_t slack = 2;
};

struct BlumCountingResult {
  bool correlated = false;
  /// max over the grid of n_up(t - Delta) - n_down(t).
  std::int64_t max_deficit = 0;
  std::uint64_t cost = 0;
};

BlumCountingResult blum_counting_correlate(const Flow& upstream,
                                           const Flow& downstream,
                                           const BlumCountingParams& params);

class BlumCountingDetector final : public Detector {
 public:
  explicit BlumCountingDetector(BlumCountingParams params)
      : params_(params) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override {
    const auto r =
        blum_counting_correlate(watermarked.flow, suspicious, params_);
    DetectionOutcome outcome{r.correlated, r.cost, std::nullopt};
    outcome.score = static_cast<double>(r.max_deficit);
    return outcome;
  }

  std::string name() const override { return "Blum"; }

 private:
  BlumCountingParams params_;
};

}  // namespace sscor
