// Passive packet-matching baseline — reconstruction of Zhang, Persaud,
// Johnson & Guan, "Stepping stone attack attribution in non-cooperative IP
// networks" (Iowa State TR 2005-02-1), the paper's reference [11].
//
// The technical report is not publicly archived, so this is a documented
// reconstruction (DESIGN.md §6) of everything the paper states about it:
// a *passive* scheme (no traffic manipulation) that finds possible
// corresponding packets by matching, computes a "smallest deviation", and
// reports a stepping stone when that deviation is at most a threshold
// (3 seconds in Table 1).
//
// Reconstruction: the flows are correlated when a complete order-preserving
// matching of upstream to downstream packets exists whose per-packet delays
// all fit in a window [c, c + 2*threshold] within [0, max_delay] — i.e.
// the downstream flow is the upstream flow time-shifted by c with jitter at
// most +-threshold around the window centre.  The detector slides c over a
// grid and reports the smallest achieved half-spread as the deviation.
// A greedy earliest-feasible scan decides each window in O(n + m).

#pragma once

#include <optional>

#include "sscor/baselines/detector.hpp"
#include "sscor/util/time.hpp"

namespace sscor {

struct ZhangPassiveParams {
  /// Deviation threshold (Table 1: 3 seconds).
  DurationUs deviation_threshold = seconds(std::int64_t{3});
  /// The timing constraint Delta shared with the active algorithms.
  DurationUs max_delay = seconds(std::int64_t{7});
  /// Grid step for the window start c.
  DurationUs grid_step = millis(500);
  /// Fraction of upstream packets allowed to stay unmatched (the scheme
  /// tolerates a little loss; this is also what keeps it cheap — no
  /// backtracking on a failed packet).
  double skip_tolerance = 0.02;
};

struct ZhangPassiveResult {
  bool correlated = false;
  /// Smallest half-spread of matched delays over all feasible windows;
  /// nullopt when no window admits a complete matching.
  std::optional<DurationUs> smallest_deviation;
  std::uint64_t cost = 0;
};

/// Runs the scheme on a flow pair (watermark-free: purely passive).
ZhangPassiveResult zhang_passive_correlate(const Flow& upstream,
                                           const Flow& downstream,
                                           const ZhangPassiveParams& params);

class ZhangPassiveDetector final : public Detector {
 public:
  explicit ZhangPassiveDetector(ZhangPassiveParams params)
      : params_(params) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override {
    const auto r =
        zhang_passive_correlate(watermarked.flow, suspicious, params_);
    DetectionOutcome outcome{r.correlated, r.cost, std::nullopt};
    outcome.score = r.smallest_deviation
                        ? to_seconds(*r.smallest_deviation)
                        : to_seconds(params_.max_delay) + 1.0;
    return outcome;
  }

  std::string name() const override { return "Zhang"; }

 private:
  ZhangPassiveParams params_;
};

}  // namespace sscor
