#include "sscor/baselines/onoff.hpp"

#include <algorithm>

namespace sscor {

std::vector<TimeUs> off_period_ends(const Flow& flow,
                                    DurationUs idle_threshold) {
  std::vector<TimeUs> ends;
  for (std::size_t i = 0; i + 1 < flow.size(); ++i) {
    if (flow.ipd(i) >= idle_threshold) {
      ends.push_back(flow.timestamp(i + 1));
    }
  }
  return ends;
}

OnOffResult onoff_correlate(const Flow& a, const Flow& b,
                            const OnOffParams& params) {
  OnOffResult result;
  const auto ends_a = off_period_ends(a, params.idle_threshold);
  const auto ends_b = off_period_ends(b, params.idle_threshold);
  result.cost = a.size() + b.size();  // one pass over each flow
  if (ends_a.size() < params.min_off_periods ||
      ends_b.size() < params.min_off_periods) {
    return result;
  }

  // Count a-ends with a b-end within the coincidence window (two-pointer).
  std::size_t coincidences = 0;
  std::size_t j = 0;
  for (const TimeUs t : ends_a) {
    while (j < ends_b.size() && ends_b[j] < t - params.coincidence_delta) {
      ++j;
    }
    if (j < ends_b.size() && ends_b[j] <= t + params.coincidence_delta) {
      ++coincidences;
    }
  }
  result.cost += ends_a.size() + ends_b.size();
  result.score = static_cast<double>(coincidences) /
                 static_cast<double>(std::min(ends_a.size(), ends_b.size()));
  result.correlated = result.score >= params.score_threshold;
  return result;
}

}  // namespace sscor
