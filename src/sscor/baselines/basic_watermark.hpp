// The basic watermark scheme (ref [7]) as a baseline detector.
//
// Decodes the watermark positionally — pair indices address the suspicious
// flow directly — which is exactly what the original IPD watermarking
// scheme does.  Robust to timing perturbation (the watermark displacement
// `a` outweighs bounded random jitter in expectation) but destroyed by
// chaff, which shifts every packet position; this is the failure the
// paper's figure 3 demonstrates and the matching-based algorithms repair.

#pragma once

#include "sscor/baselines/detector.hpp"

namespace sscor {

class BasicWatermarkDetector final : public Detector {
 public:
  /// `hamming_threshold` as in the main algorithms (7 of 24 in the paper).
  explicit BasicWatermarkDetector(std::uint32_t hamming_threshold)
      : hamming_threshold_(hamming_threshold) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override;

  std::string name() const override { return "BasicWM"; }

 private:
  std::uint32_t hamming_threshold_;
};

}  // namespace sscor
