#include "sscor/baselines/deviation.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace sscor {

DeviationResult deviation_correlate(const Flow& upstream,
                                    const Flow& downstream,
                                    const DeviationParams& params) {
  DeviationResult result;
  result.min_deviation = std::numeric_limits<DurationUs>::max();
  const std::size_t n = upstream.size();
  const std::size_t m = downstream.size();
  if (n == 0 || m < n) {
    return result;
  }
  const std::vector<TimeUs>& up = upstream.timestamps();
  const std::vector<TimeUs>& down = downstream.timestamps();

  const std::size_t alignments =
      std::min<std::size_t>(m - n + 1, params.max_alignments);
  for (std::size_t offset = 0; offset < alignments; ++offset) {
    DurationUs lo = std::numeric_limits<DurationUs>::max();
    DurationUs hi = std::numeric_limits<DurationUs>::min();
    for (std::size_t i = 0; i < n; ++i) {
      const DurationUs gap = down[offset + i] - up[i];
      lo = std::min(lo, gap);
      hi = std::max(hi, gap);
      // Early abandon once this alignment cannot beat the best.
      if (hi - lo >= result.min_deviation) break;
    }
    result.cost += 2 * n;  // pessimistic: a full pass per alignment
    result.min_deviation = std::min(result.min_deviation, hi - lo);
  }
  result.correlated = result.min_deviation <= params.deviation_threshold;
  return result;
}

}  // namespace sscor
