#include "sscor/baselines/basic_watermark.hpp"

#include "sscor/watermark/decoder.hpp"

namespace sscor {

DetectionOutcome BasicWatermarkDetector::detect(
    const WatermarkedFlow& watermarked, const Flow& suspicious) const {
  DetectionOutcome outcome;
  const auto decoded = decode_positional(watermarked.schedule, suspicious);
  // Cost: the positional decoder reads two timestamps per pair.
  outcome.cost = static_cast<std::uint64_t>(
                     watermarked.schedule.params().total_pairs()) *
                 2;
  if (!decoded) {
    // Flow shorter than the highest pair index: cannot decode.
    outcome.correlated = false;
    outcome.score = static_cast<double>(watermarked.watermark.size());
    return outcome;
  }
  const std::size_t hamming =
      decoded->hamming_distance(watermarked.watermark);
  outcome.correlated = hamming <= hamming_threshold_;
  outcome.score = static_cast<double>(hamming);
  return outcome;
}

}  // namespace sscor
