#include "sscor/baselines/blum_counting.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sscor/util/error.hpp"

namespace sscor {

BlumCountingResult blum_counting_correlate(const Flow& upstream,
                                           const Flow& downstream,
                                           const BlumCountingParams& params) {
  require(params.max_delay >= 0, "max delay must be non-negative");
  require(params.grid_step > 0, "grid step must be positive");

  BlumCountingResult result;
  if (upstream.empty()) {
    result.correlated = true;  // vacuously: nothing needs to cross
    return result;
  }
  if (downstream.empty()) {
    result.max_deficit = static_cast<std::int64_t>(upstream.size());
    return result;
  }

  const std::vector<TimeUs>& up = upstream.timestamps();
  const std::vector<TimeUs>& down = downstream.timestamps();

  // Walk the grid with two monotone pointers; each pointer advance is a
  // packet access under the paper's cost metric.
  std::size_t i = 0;  // packets of `up` with timestamp <= t - Delta
  std::size_t j = 0;  // packets of `down` with timestamp <= t
  std::int64_t max_deficit = std::numeric_limits<std::int64_t>::min();
  const TimeUs start = std::min(up.front() + params.max_delay, down.front());
  const TimeUs end = std::max(up.back() + params.max_delay, down.back());
  for (TimeUs t = start;; t += params.grid_step) {
    while (i < up.size() && up[i] <= t - params.max_delay) {
      ++i;
      result.cost += 1;
    }
    while (j < down.size() && down[j] <= t) {
      ++j;
      result.cost += 1;
    }
    max_deficit =
        std::max(max_deficit,
                 static_cast<std::int64_t>(i) - static_cast<std::int64_t>(j));
    if (t >= end) break;
  }
  result.max_deficit = max_deficit;
  result.correlated = max_deficit <= params.slack;
  return result;
}

}  // namespace sscor
