// Yoda & Etoh's deviation-based correlation (ESORICS 2000), the paper's
// reference [10], as an additional related-work baseline.
//
// The deviation between flows f (n packets) and f' (m >= n packets) is the
// smallest, over all contiguous alignments of f against n consecutive
// packets of f', of the spread (max - min) of the pairwise gaps
// t'_{j+i} - t_i.  Two flows relaying the same connection differ by a
// near-constant shift, so their deviation is small.

#pragma once

#include "sscor/baselines/detector.hpp"
#include "sscor/util/time.hpp"

namespace sscor {

struct DeviationParams {
  /// Report correlated when the minimum deviation is at most this.
  DurationUs deviation_threshold = seconds(std::int64_t{7});
  /// Cap on alignments examined (the full scan is O(n * (m - n))).
  std::size_t max_alignments = 4096;
};

struct DeviationResult {
  bool correlated = false;
  DurationUs min_deviation = 0;
  std::uint64_t cost = 0;
};

DeviationResult deviation_correlate(const Flow& upstream,
                                    const Flow& downstream,
                                    const DeviationParams& params);

class DeviationDetector final : public Detector {
 public:
  explicit DeviationDetector(DeviationParams params) : params_(params) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override {
    const auto r =
        deviation_correlate(watermarked.flow, suspicious, params_);
    return DetectionOutcome{r.correlated, r.cost};
  }

  std::string name() const override { return "YodaEtoh"; }

 private:
  DeviationParams params_;
};

}  // namespace sscor
