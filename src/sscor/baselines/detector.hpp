// A uniform detector interface so the experiment harness can sweep our four
// algorithms and the baseline schemes through the same code path.
//
// Every detector answers: "is `suspicious` a downstream flow of the
// (watermarked) upstream flow?" and reports the paper's cost metric.
// Passive baselines ignore the watermark fields and look only at the
// upstream flow's timing.

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sscor/correlation/correlator.hpp"
#include "sscor/flow/flow.hpp"
#include "sscor/matching/match_context.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {

struct DetectionOutcome {
  bool correlated = false;
  std::uint64_t cost = 0;
  /// Optional continuous statistic behind the decision, oriented so that
  /// *smaller means more likely correlated* (Hamming distance for the
  /// watermark schemes, deviation seconds for Zhang, count deficit for
  /// Blum).  Lets the ROC bench sweep the decision threshold without
  /// re-running the detector.
  std::optional<double> score;
};

class Detector {
 public:
  virtual ~Detector() = default;
  virtual DetectionOutcome detect(const WatermarkedFlow& watermarked,
                                  const Flow& suspicious) const = 0;
  virtual std::string name() const = 0;

  /// The MatchContextKey this detector's matching phase would use, or
  /// nullopt when the detector cannot profit from a shared MatchContext
  /// (passive baselines; Greedy, whose cost model bypasses the full scan).
  /// Detectors of the same key within one harness sweep can share a single
  /// context per flow pair.
  virtual std::optional<MatchContextKey> shared_match_key() const {
    return std::nullopt;
  }

  /// detect(), consuming an optional precomputed MatchContext for the
  /// pair.  The default ignores the context — only detectors that report a
  /// shared_match_key() do better.
  virtual DetectionOutcome detect_with_context(
      const WatermarkedFlow& watermarked, const Flow& suspicious,
      const MatchContext* /*context*/) const {
    return detect(watermarked, suspicious);
  }
};

/// Adapts a Correlator (BruteForce/Greedy/Greedy+/Greedy*) to Detector.
class CorrelatorDetector final : public Detector {
 public:
  CorrelatorDetector(CorrelatorConfig config, Algorithm algorithm)
      : correlator_(config, algorithm) {}

  DetectionOutcome detect(const WatermarkedFlow& watermarked,
                          const Flow& suspicious) const override {
    return detect_with_context(watermarked, suspicious, nullptr);
  }

  DetectionOutcome detect_with_context(
      const WatermarkedFlow& watermarked, const Flow& suspicious,
      const MatchContext* context) const override {
    // A matching context routes through the batched SoA engine (identical
    // results, but the decode reuses the thread workspace); otherwise the
    // scalar path handles the cold run or drops the stale context.
    const CorrelationResult r =
        context != nullptr &&
                context->matches(watermarked.flow, suspicious,
                                 correlator_.config().max_delay,
                                 correlator_.config().size_constraint)
            ? correlator_.correlate_prepared(watermarked, suspicious, *context)
            : correlator_.correlate(watermarked, suspicious, context);
    DetectionOutcome outcome{r.correlated, r.cost, std::nullopt};
    // Rejections before decoding carry no meaningful distance; report the
    // worst score so threshold sweeps treat them as maximally unlikely.
    outcome.score = r.matching_complete
                        ? static_cast<double>(r.hamming)
                        : static_cast<double>(watermarked.watermark.size());
    return outcome;
  }

  std::optional<MatchContextKey> shared_match_key() const override {
    // Greedy never materialises the matching sets (its cost model is the
    // binary-search probes), so sharing a context buys it nothing.
    if (correlator_.algorithm() == Algorithm::kGreedy) return std::nullopt;
    return MatchContextKey{correlator_.config().max_delay,
                           correlator_.config().size_constraint};
  }

  std::string name() const override {
    return to_string(correlator_.algorithm());
  }

 private:
  Correlator correlator_;
};

}  // namespace sscor
