// Tests for the library extensions beyond the paper's core: the
// quantization (QIM) watermark, the Blum counting baseline, the
// loss-tolerant correlator, the online correlator, and the traceback
// engine.

#include <gtest/gtest.h>

#include "sscor/baselines/blum_counting.hpp"
#include "sscor/correlation/online.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/correlation/traceback.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/loss_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"
#include "sscor/watermark/quantization.hpp"

namespace sscor {
namespace {

WatermarkedFlow make_marked(std::uint64_t seed, std::size_t packets = 1000) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(packets, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Embedder embedder(WatermarkParams{}, mix_seeds(seed, 3));
  return embedder.embed(flow, Watermark::random(24, rng));
}

// ---------------------------------------------------------------- QIM ---

TEST(Qim, ExactDecodeOnWidelySpacedFlow) {
  // No FIFO interference when IPDs dwarf the quantization step.
  QimParams params;
  std::vector<TimeUs> timestamps;
  for (int i = 0; i < 500; ++i) {
    timestamps.push_back(seconds(std::int64_t{10}) * i);
  }
  const Flow flow = Flow::from_timestamps(timestamps);
  Rng rng(3);
  for (int t = 0; t < 5; ++t) {
    const Watermark wm = Watermark::random(params.bits, rng);
    const QimEmbedder embedder(params, 200 + t);
    const auto marked = embedder.embed(flow, wm);
    const auto decoded =
        decode_qim_positional(marked.schedule, params.step, marked.flow);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->hamming_distance(wm), 0u) << "trial " << t;
  }
}

TEST(Qim, ExactCellBoundaryDecodes) {
  // Regression: an IPD exactly at centre + step/2 must round-trip.  The
  // decoder's parity_of rounds half up, so its cell for index q is the
  // half-open [centre - s/2, centre + (s - s/2)); the embedder used to keep
  // any IPD with ipd - centre <= s/2, which for even steps left a boundary
  // IPD unchanged yet decoding to the *opposite* parity.  Both parities of
  // step are pinned: even steps exercised the bug, odd steps were already
  // correct and must stay so.
  for (const DurationUs step : {millis(400), millis(400) - 1}) {
    QimParams params;
    params.bits = 24;
    params.redundancy = 2;
    params.step = step;
    // Uniform spacing of 2*step + step/2: every pair-offset-1 IPD sits in
    // the even-parity cell q=2, exactly on the half-cell boundary.
    const DurationUs ipd0 = 2 * step + step / 2;
    std::vector<TimeUs> timestamps;
    for (int i = 0; i < 500; ++i) timestamps.push_back(ipd0 * i);
    const Flow flow = Flow::from_timestamps(timestamps);
    for (const std::uint8_t value : {0, 1}) {
      const Watermark wm(std::vector<std::uint8_t>(params.bits, value));
      const QimEmbedder embedder(params, 77);
      const auto marked = embedder.embed(flow, wm);
      const auto decoded =
          decode_qim_positional(marked.schedule, params.step, marked.flow);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->hamming_distance(wm), 0u)
          << "step " << step << " bit value " << int(value);
    }
  }
}

TEST(Qim, NearExactDecodeOnInteractiveFlow) {
  // Dense interactive flows suffer a little FIFO cascade interference
  // (delaying a pair's second packet pushes neighbours), costing a couple
  // of the 24 bits — well inside the detection threshold.
  const traffic::InteractiveSessionModel model;
  QimParams params;
  Rng rng(3);
  for (int t = 0; t < 5; ++t) {
    const Flow flow = model.generate(1000, 0, 100 + t);
    const Watermark wm = Watermark::random(params.bits, rng);
    const QimEmbedder embedder(params, 200 + t);
    const auto marked = embedder.embed(flow, wm);
    const auto decoded =
        decode_qim_positional(marked.schedule, params.step, marked.flow);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_LE(decoded->hamming_distance(wm), 4u) << "trial " << t;
  }
}

TEST(Qim, EmbeddingDelaysBounded) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(1000, 0, 7);
  QimParams params;
  Rng rng(5);
  const QimEmbedder embedder(params, 11);
  const auto marked = embedder.embed(flow, Watermark::random(24, rng));
  for (std::size_t i = 0; i < flow.size(); ++i) {
    const DurationUs delay = marked.flow.timestamp(i) - flow.timestamp(i);
    EXPECT_GE(delay, 0);
    // One adjustment of < 2*step per packet plus possible FIFO push.
    EXPECT_LE(delay, 4 * params.step);
  }
}

TEST(Qim, RobustToSmallJitterFragileToLarge) {
  const traffic::InteractiveSessionModel model;
  QimParams params;  // step 400ms -> tolerates ~200ms of IPD jitter
  Rng rng(9);
  int small_hits = 0;
  int large_hits = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const Flow flow = model.generate(1000, 0, 300 + t);
    const Watermark wm = Watermark::random(params.bits, rng);
    const QimEmbedder embedder(params, 400 + t);
    const auto marked = embedder.embed(flow, wm);
    const auto decode_hit = [&](DurationUs delta, std::uint64_t seed) {
      // IID jitter directly attacks the quantization cells.
      const traffic::IidSortPerturber perturber(delta, seed);
      const auto decoded = decode_qim_positional(
          marked.schedule, params.step, perturber.apply(marked.flow));
      return decoded && decoded->hamming_distance(wm) <= 7;
    };
    small_hits += decode_hit(millis(80), 500 + t);
    large_hits += decode_hit(seconds(std::int64_t{4}), 600 + t);
  }
  EXPECT_GE(small_hits, 8);
  EXPECT_LE(large_hits, 2);
}

// --------------------------------------------------------------- Blum ---

TEST(Blum, RelayedFlowCorrelates) {
  const auto marked = make_marked(21);
  const traffic::UniformPerturber perturber(seconds(std::int64_t{5}), 31);
  const traffic::PoissonChaffInjector chaff(2.0, 37);
  BlumCountingParams params;
  params.max_delay = seconds(std::int64_t{5});
  const auto r = blum_counting_correlate(
      marked.flow, chaff.apply(perturber.apply(marked.flow)), params);
  EXPECT_TRUE(r.correlated);
  EXPECT_LE(r.max_deficit, params.slack);
  EXPECT_GT(r.cost, 0u);
}

TEST(Blum, UnrelatedFlowsGoDeficit) {
  const traffic::InteractiveSessionModel model;
  const Flow a = model.generate(1000, 0, 41);
  const Flow b = model.generate(400, 0, 43);  // far fewer packets
  BlumCountingParams params;
  const auto r = blum_counting_correlate(a, b, params);
  EXPECT_FALSE(r.correlated);
  EXPECT_GT(r.max_deficit, params.slack);
}

TEST(Blum, EdgeCases) {
  BlumCountingParams params;
  EXPECT_TRUE(blum_counting_correlate(Flow{}, Flow{}, params).correlated);
  const Flow one = Flow::from_timestamps(std::vector<TimeUs>{0});
  EXPECT_FALSE(blum_counting_correlate(one, Flow{}, params).correlated);
}

// ------------------------------------------------------------- Robust ---

TEST(Robust, MatchesStrictGreedyPlusWithoutLoss) {
  const auto marked = make_marked(51);
  const traffic::UniformPerturber perturber(seconds(std::int64_t{4}), 53);
  const traffic::PoissonChaffInjector chaff(2.0, 59);
  const Flow down = chaff.apply(perturber.apply(marked.flow));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  const auto strict =
      Correlator(config, Algorithm::kGreedyPlus).correlate(marked, down);
  const auto robust = run_greedy_plus_robust(
      marked.schedule, marked.watermark, marked.flow, down, config);
  EXPECT_EQ(robust.correlated, strict.correlated);
  EXPECT_TRUE(robust.matching_complete);
}

TEST(Robust, SurvivesLossThatBreaksStrict) {
  // With a tight delay bound and no chaff, windows are narrow: a lost
  // packet usually empties one, which the strict algorithm treats as an
  // immediate negative (paper assumption 1) while the robust mode keeps
  // decoding the surviving redundancy.
  int strict_hits = 0;
  int robust_hits = 0;
  constexpr int kTrials = 8;
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  for (int t = 0; t < kTrials; ++t) {
    const auto marked = make_marked(600 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{1}),
                                              700 + t);
    const traffic::LossRepacketizationModel loss(0.02, 0, 900 + t);
    const Flow down = loss.apply(perturber.apply(marked.flow));
    strict_hits += Correlator(config, Algorithm::kGreedyPlus)
                       .correlate(marked, down)
                       .correlated;
    robust_hits += run_greedy_plus_robust(marked.schedule, marked.watermark,
                                          marked.flow, down, config)
                       .correlated;
  }
  EXPECT_LE(strict_hits, 2) << "2% loss should break the strict algorithm";
  EXPECT_GE(robust_hits, kTrials - 2) << "the robust mode should survive";
}

TEST(Robust, RejectsUnrelatedFlowsAndExcessLoss) {
  const auto marked = make_marked(61);
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  // Unrelated flow.
  const auto other = make_marked(62);
  const traffic::UniformPerturber perturber(seconds(std::int64_t{4}), 63);
  EXPECT_FALSE(run_greedy_plus_robust(marked.schedule, marked.watermark,
                                      marked.flow,
                                      perturber.apply(other.flow), config)
                   .correlated);
  // Loss far beyond the tolerance budget.
  const traffic::LossRepacketizationModel heavy_loss(0.30, 0, 67);
  const auto r = run_greedy_plus_robust(
      marked.schedule, marked.watermark, marked.flow,
      heavy_loss.apply(perturber.apply(marked.flow)), config);
  EXPECT_FALSE(r.correlated);
  EXPECT_FALSE(r.matching_complete);
}

TEST(Robust, ZeroPacketDownstreamRejectsCleanly) {
  // Total loss (the limit the paper's assumption 1 forbids outright):
  // every matching set is empty, which must be a clean reject for every
  // tolerance budget — including the one that tolerates everything.
  const auto marked = make_marked(71);
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  for (const double fraction : {0.0, 0.05, 1.0}) {
    RobustOptions options;
    options.max_unmatched_fraction = fraction;
    const auto r =
        run_greedy_plus_robust(marked.schedule, marked.watermark,
                               marked.flow, Flow(), config, options);
    EXPECT_FALSE(r.correlated) << "fraction " << fraction;
    EXPECT_FALSE(r.matching_complete) << "fraction " << fraction;
    EXPECT_FALSE(r.interrupted) << "fraction " << fraction;
  }
}

TEST(Robust, AllChaffDownstreamRejectsCleanly) {
  // A downstream flow that shares the time span but contains none of the
  // real packets — only cover traffic.  The decoder sees plausible
  // windows full of wrong candidates; it must terminate cleanly and (for
  // this seed) reject.
  const auto marked = make_marked(72);
  const TimeUs start = marked.flow.start_time();
  const DurationUs span = marked.flow.end_time() - start;
  Rng rng(73);
  std::vector<TimeUs> times;
  for (int i = 0; i < 800; ++i) {
    times.push_back(start + static_cast<TimeUs>(
                                rng.uniform_u64(static_cast<std::uint64_t>(
                                    span + seconds(std::int64_t{4})))));
  }
  std::sort(times.begin(), times.end());
  std::vector<PacketRecord> packets;
  for (const TimeUs t : times) packets.push_back(PacketRecord{t, 0, true});
  const Flow chaff_only(std::move(packets), "all-chaff");

  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  const auto r = run_greedy_plus_robust(marked.schedule, marked.watermark,
                                        marked.flow, chaff_only, config);
  EXPECT_FALSE(r.correlated);
  if (r.correlated) {
    EXPECT_LE(r.hamming, config.hamming_threshold);
  }
}

TEST(Robust, ZeroToleranceMatchesStrictVerdictUnderLoss) {
  // max_unmatched_fraction = 0 removes the robustness budget: a single
  // lost packet must reject exactly like the strict algorithm does.
  const auto marked = make_marked(74);
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  const traffic::LossRepacketizationModel loss(0.05, 0, 75);
  const Flow down = loss.apply(marked.flow);
  ASSERT_LT(down.size(), marked.flow.size());  // something was dropped
  RobustOptions zero;
  zero.max_unmatched_fraction = 0.0;
  const auto r = run_greedy_plus_robust(marked.schedule, marked.watermark,
                                        marked.flow, down, config, zero);
  EXPECT_FALSE(r.matching_complete);
  EXPECT_FALSE(r.correlated);
}

TEST(Robust, SurvivesLossAfterMaximalPerturbation) {
  // Worst admissible timing first (perturbation at the full Delta the
  // matcher allows for), then loss on top: the pair the paper's §6 future
  // work is about.  The robust decode must stay clean and, with the loss
  // inside its tolerance budget, usually still detect.
  int hits = 0;
  constexpr int kTrials = 6;
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{2});
  for (int t = 0; t < kTrials; ++t) {
    const auto marked = make_marked(800 + t);
    const traffic::UniformPerturber max_perturb(config.max_delay, 810 + t);
    const traffic::LossRepacketizationModel loss(0.02, 0, 820 + t);
    const Flow down = loss.apply(max_perturb.apply(marked.flow));
    const auto r = run_greedy_plus_robust(marked.schedule, marked.watermark,
                                          marked.flow, down, config);
    EXPECT_FALSE(r.interrupted);
    if (r.correlated) {
      EXPECT_LE(r.hamming, config.hamming_threshold);
      ++hits;
    }
  }
  EXPECT_GE(hits, kTrials - 2)
      << "robust decode should survive loss after maximal perturbation";
}

// ------------------------------------------------------------- Online ---

TEST(Online, MatchesOfflineVerdictOnFullStreams) {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  for (int t = 0; t < 6; ++t) {
    const auto marked = make_marked(1000 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{4}),
                                              1100 + t);
    const traffic::PoissonChaffInjector chaff(2.0, 1200 + t);
    const Flow down = chaff.apply(perturber.apply(marked.flow));

    OnlineCorrelator online(marked, config);
    for (const auto& p : down.packets()) {
      if (!online.ingest(p)) break;
    }
    online.finish();
    const auto streamed = online.result();
    const auto offline =
        Correlator(config, Algorithm::kGreedyPlus).correlate(marked, down);
    EXPECT_EQ(streamed.correlated, offline.correlated) << "trial " << t;
    if (!online.early_rejected()) {
      EXPECT_EQ(streamed.hamming, offline.hamming);
      EXPECT_EQ(streamed.cost, offline.cost);
    }
  }
}

TEST(Online, EarlyRejectsDisjointStreamBeforeItEnds) {
  const auto marked = make_marked(71);
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{2});
  // An unrelated flow that starts an hour later: the very first upstream
  // window finalises empty early in the stream.
  const Flow late = marked.flow.shifted(seconds(std::int64_t{3600}));
  OnlineCorrelator online(marked, config);
  std::size_t consumed = 0;
  for (const auto& p : late.packets()) {
    ++consumed;
    if (!online.ingest(p)) break;
  }
  EXPECT_TRUE(online.early_rejected());
  EXPECT_LT(consumed, late.size() / 10) << "should reject almost instantly";
  EXPECT_FALSE(online.result().correlated);
}

TEST(Online, EarlyRejectionAgreesWithOfflineDecision) {
  // Whenever the online path rejects early, the offline run on the full
  // stream must also reject (the early exits are sound, never eager).
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  int early = 0;
  for (int t = 0; t < 8; ++t) {
    const auto marked = make_marked(2000 + t);
    const auto other = make_marked(3000 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{3}),
                                              4000 + t);
    const traffic::PoissonChaffInjector chaff(1.0, 5000 + t);
    const Flow down = chaff.apply(perturber.apply(other.flow));

    OnlineCorrelator online(marked, config);
    for (const auto& p : down.packets()) {
      if (!online.ingest(p)) break;
    }
    online.finish();
    if (online.early_rejected()) {
      ++early;
      const auto offline =
          Correlator(config, Algorithm::kGreedyPlus).correlate(marked, down);
      EXPECT_FALSE(offline.correlated) << "early exit was not sound";
    }
  }
  EXPECT_GT(early, 0) << "expected at least one early rejection";
}

TEST(Online, ProgressReporting) {
  const auto marked = make_marked(81);
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{2});
  const traffic::UniformPerturber perturber(seconds(std::int64_t{2}), 83);
  const Flow down = perturber.apply(marked.flow);
  OnlineCorrelator online(marked, config);
  EXPECT_DOUBLE_EQ(online.finalized_fraction(), 0.0);
  std::size_t half = down.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    online.ingest(down.packet(i));
  }
  const double mid = online.finalized_fraction();
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 0.9);
  EXPECT_EQ(online.packets_seen(), half);
}

// ---------------------------------------------------------- Traceback ---

TEST(Traceback, IdentifiesTheRightOriginAmongMany) {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  TracebackEngine engine(config);
  std::vector<WatermarkedFlow> origins;
  for (int i = 0; i < 5; ++i) {
    origins.push_back(make_marked(7000 + i));
    engine.register_flow(origins.back());
  }
  ASSERT_EQ(engine.flow_count(), 5u);

  const traffic::UniformPerturber perturber(seconds(std::int64_t{4}), 7100);
  const traffic::PoissonChaffInjector chaff(2.0, 7101);
  const Flow downstream = chaff.apply(perturber.apply(origins[3].flow));

  TracebackEngine::TraceStats stats;
  const auto matches = engine.trace(downstream, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].traced_id, 3u);
  EXPECT_EQ(stats.candidates_checked, 5u);
  EXPECT_GT(stats.total_cost, 0u);
}

TEST(Traceback, PrefilterIsSound) {
  // Every pair the prefilter would skip must also be rejected by the full
  // correlator.
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  TracebackEngine engine(config);
  const Correlator correlator(config, Algorithm::kGreedyPlus);
  for (int t = 0; t < 6; ++t) {
    const auto marked = make_marked(7700 + t, 500);
    const auto other = make_marked(7800 + t, 400);
    const Flow candidates[] = {
        other.flow,
        other.flow.shifted(seconds(std::int64_t{1000})),
        Flow::from_timestamps(std::vector<TimeUs>{0, 1, 2}),
        marked.flow.shifted(seconds(std::int64_t{4})),
    };
    for (const Flow& candidate : candidates) {
      if (engine.prefilter_rejects(marked, candidate)) {
        EXPECT_FALSE(correlator.correlate(marked, candidate).correlated)
            << "prefilter skipped a pair the correlator accepts";
      }
    }
  }
}

TEST(Traceback, PrefilterSavesWork) {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  TracebackEngine engine(config);
  engine.register_flow(make_marked(8000));
  // Far-future candidate: prefiltered, zero correlator cost.
  const Flow far = engine.traced(0).flow.shifted(seconds(std::int64_t{9999}));
  TracebackEngine::TraceStats stats;
  EXPECT_TRUE(engine.trace(far, &stats).empty());
  EXPECT_EQ(stats.prefiltered, 1u);
  EXPECT_EQ(stats.total_cost, 0u);
}

TEST(Traceback, TraceAllCoversEveryCandidate) {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  TracebackEngine engine(config);
  engine.register_flow(make_marked(8100));
  engine.register_flow(make_marked(8101));

  const traffic::UniformPerturber perturber(seconds(std::int64_t{4}), 8200);
  std::vector<Flow> candidates;
  candidates.push_back(perturber.apply(engine.traced(1).flow));
  candidates.push_back(perturber.apply(engine.traced(0).flow));
  const auto results = engine.trace_all(candidates);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].first, 0u);
  EXPECT_EQ(results[0].second.traced_id, 1u);
  EXPECT_EQ(results[1].first, 1u);
  EXPECT_EQ(results[1].second.traced_id, 0u);
}

}  // namespace
}  // namespace sscor
