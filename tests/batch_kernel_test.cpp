// Parity tests for the batched SoA decode kernel (batch::BatchDecoder).
//
// The load-bearing property: for every algorithm, a BatchDecoder decode over
// a shared MatchContext returns a CorrelationResult identical *in every
// field, including the paper's cost metric and the interruption fields* to
// the scalar run_* reference with the same context (and therefore, by the
// match-context parity suite, to a cold scalar run).  The batched engine is
// pure plumbing: SoA layout and kernel dispatch must never change a number.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sscor/correlation/brute_force.hpp"
#include "sscor/correlation/decode_plan.hpp"
#include "sscor/correlation/greedy.hpp"
#include "sscor/correlation/greedy_plus.hpp"
#include "sscor/correlation/greedy_star.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/matching/batch_kernel.hpp"
#include "sscor/matching/batch_kernels.hpp"
#include "sscor/matching/match_context.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/loss_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/traffic/size_model.hpp"
#include "sscor/correlation/correlator.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/rng.hpp"
#include "sscor/watermark/embedder.hpp"
#include "sscor/watermark/quantization.hpp"

namespace sscor {
namespace {

/// Stricter than the match-context suite: the batched port must also agree
/// on the interruption fields, not just the headline decode.
void expect_same_result(const CorrelationResult& scalar,
                        const CorrelationResult& batched) {
  EXPECT_EQ(scalar.algorithm, batched.algorithm);
  EXPECT_EQ(scalar.correlated, batched.correlated);
  EXPECT_EQ(scalar.hamming, batched.hamming);
  EXPECT_EQ(scalar.best_watermark, batched.best_watermark);
  EXPECT_EQ(scalar.cost, batched.cost) << "cost-replay invariant violated";
  EXPECT_EQ(scalar.matching_complete, batched.matching_complete);
  EXPECT_EQ(scalar.cost_bound_hit, batched.cost_bound_hit);
  EXPECT_EQ(scalar.interrupted, batched.interrupted);
  EXPECT_EQ(scalar.stop_reason, batched.stop_reason);
  EXPECT_EQ(scalar.degraded, batched.degraded);
}

/// Runs every algorithm through both engines over one shared context.
/// Brute force is opt-in (exponential on larger instances).
void check_batch_parity(const WatermarkedFlow& marked, const Flow& downstream,
                        const CorrelatorConfig& config,
                        bool include_brute = true) {
  const MatchContext context =
      MatchContext::build(marked.flow, downstream, config.max_delay,
                          config.size_constraint);
  batch::BatchDecoder decoder(config);
  const batch::DecodeHypothesis hyp{&marked.schedule, &marked.watermark};

  expect_same_result(
      run_greedy_plus(marked.schedule, marked.watermark, marked.flow,
                      downstream, config, &context),
      decoder.decode_one(Algorithm::kGreedyPlus, context, hyp));
  expect_same_result(
      run_greedy_star(marked.schedule, marked.watermark, marked.flow,
                      downstream, config, &context),
      decoder.decode_one(Algorithm::kGreedyStar, context, hyp));
  {
    const DecodePlan plan(marked.schedule, marked.watermark);
    expect_same_result(
        run_greedy(plan, marked.flow, downstream, config, &context),
        decoder.decode_one(Algorithm::kGreedy, context, hyp));
  }
  for (const double fraction : {0.05, 0.3}) {
    RobustOptions options;
    options.max_unmatched_fraction = fraction;
    expect_same_result(
        run_greedy_plus_robust(marked.schedule, marked.watermark, marked.flow,
                               downstream, config, options, &context),
        decoder.robust(context, hyp, options));
  }
  if (include_brute) {
    expect_same_result(
        run_brute_force(marked.schedule, marked.watermark, marked.flow,
                        downstream, config, {}, &context),
        decoder.decode_one(Algorithm::kBruteForce, context, hyp));
    for (const bool prune : {true, false}) {
      BruteForceOptions options;
      options.prune = prune;
      expect_same_result(
          run_brute_force(marked.schedule, marked.watermark, marked.flow,
                          downstream, config, options, &context),
          decoder.brute_force(context, hyp, options));
    }
  }
}

WatermarkParams small_params() {
  WatermarkParams params;
  params.bits = 4;
  params.redundancy = 1;
  params.pair_offset = 1;
  params.embedding_delay = seconds(std::int64_t{2});
  return params;
}

struct SmallInstance {
  WatermarkedFlow marked;
  Flow downstream;
};

SmallInstance make_small_instance(std::uint64_t seed, double chaff_rate,
                                  DurationUs delta) {
  const traffic::PoissonFlowModel model(0.5);
  const Flow flow = model.generate(20, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Watermark wm = Watermark::random(small_params().bits, rng);
  const Embedder embedder(small_params(), mix_seeds(seed, 3));
  SmallInstance instance{embedder.embed(flow, wm), Flow{}};
  const traffic::UniformPerturber perturber(delta, mix_seeds(seed, 4));
  const traffic::PoissonChaffInjector chaff(chaff_rate, mix_seeds(seed, 5));
  instance.downstream = chaff.apply(perturber.apply(instance.marked.flow));
  return instance;
}

CorrelatorConfig small_config() {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  config.hamming_threshold = 1;
  config.cost_bound = 200'000'000;
  return config;
}

TEST(BatchKernelParity, AllAlgorithmsOnSmallInstances) {
  for (const std::uint64_t seed : {110u, 111u, 112u, 113u, 114u, 115u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 0.5, seconds(std::int64_t{1}));
    check_batch_parity(instance.marked, instance.downstream, small_config());
  }
}

TEST(BatchKernelParity, HeavyChaff) {
  for (const std::uint64_t seed : {120u, 121u, 122u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 3.0, seconds(std::int64_t{1}));
    check_batch_parity(instance.marked, instance.downstream, small_config());
  }
}

TEST(BatchKernelParity, SizeConstraint) {
  for (const std::uint64_t seed : {131u, 132u, 133u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 0.5, seconds(std::int64_t{1}));
    auto config = small_config();
    config.size_constraint = SizeConstraint{16};
    check_batch_parity(instance.marked, instance.downstream, config);
  }
}

TEST(BatchKernelParity, UncorrelatedPairsRejectIdentically) {
  // Upstream of one instance against the downstream of another: the
  // incomplete-matching reject path must replay with identical cost too.
  const auto a = make_small_instance(141, 1.0, seconds(std::int64_t{1}));
  const auto b = make_small_instance(142, 1.0, seconds(std::int64_t{1}));
  check_batch_parity(a.marked, b.downstream, small_config());
}

TEST(BatchKernelParity, TightCostBound) {
  // A bound small enough that the replayed matching cost alone exhausts the
  // meter; bound-hit and interruption reporting must stay identical.
  const auto instance =
      make_small_instance(151, 2.0, seconds(std::int64_t{1}));
  auto config = small_config();
  config.cost_bound = 50;
  check_batch_parity(instance.marked, instance.downstream, config);
}

TEST(BatchKernelParity, LossAndRepacketization) {
  // Downstream loses packets (violates the paper's assumption 2): the
  // robust variant's gap-aware path and the strict algorithms' reject path
  // must both replay exactly.
  for (const std::uint64_t seed : {161u, 162u, 163u}) {
    SCOPED_TRACE(seed);
    auto instance = make_small_instance(seed, 1.0, seconds(std::int64_t{1}));
    const traffic::LossRepacketizationModel loss(0.15, 0, mix_seeds(seed, 9));
    instance.downstream = loss.apply(instance.downstream);
    check_batch_parity(instance.marked, instance.downstream, small_config());
  }
}

TEST(BatchKernelParity, DegenerateDownstreams) {
  const auto instance =
      make_small_instance(171, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  // Empty downstream.
  check_batch_parity(instance.marked, Flow{}, config);
  // One-packet downstream.
  const TimeUs first = instance.downstream.timestamp(0);
  check_batch_parity(instance.marked,
                     Flow::from_timestamps(std::vector<TimeUs>{first}), config);
}

TEST(BatchKernelParity, WrongKeyHypotheses) {
  // One context serves every (schedule, watermark) hypothesis; the batch
  // engine must agree with the scalar runners on each, matches or not.
  const auto instance =
      make_small_instance(181, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(instance.marked.flow, instance.downstream,
                          config.max_delay, config.size_constraint);
  batch::BatchDecoder decoder(config);
  Rng rng(182);
  for (std::uint64_t key = 1900; key < 1906; ++key) {
    SCOPED_TRACE(key);
    const auto schedule = KeySchedule::create(
        small_params(), instance.marked.flow.size(), key);
    const Watermark target = Watermark::random(small_params().bits, rng);
    const batch::DecodeHypothesis hyp{&schedule, &target};
    expect_same_result(
        run_greedy_plus(schedule, target, instance.marked.flow,
                        instance.downstream, config, &context),
        decoder.decode_one(Algorithm::kGreedyPlus, context, hyp));
    expect_same_result(
        run_greedy_star(schedule, target, instance.marked.flow,
                        instance.downstream, config, &context),
        decoder.decode_one(Algorithm::kGreedyStar, context, hyp));
  }
}

TEST(BatchKernelParity, BatchDecodeEqualsHypothesisLoop) {
  // decode() over a hypothesis span is the plan-rebuilding fast path; it
  // must return exactly what a fresh decode_one per hypothesis returns.
  const auto instance =
      make_small_instance(191, 1.0, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(instance.marked.flow, instance.downstream,
                          config.max_delay, config.size_constraint);

  std::vector<KeySchedule> schedules;
  std::vector<Watermark> targets;
  Rng rng(192);
  schedules.push_back(instance.marked.schedule);
  targets.push_back(instance.marked.watermark);
  for (std::uint64_t key = 2900; key < 2907; ++key) {
    schedules.push_back(KeySchedule::create(
        small_params(), instance.marked.flow.size(), key));
    targets.push_back(Watermark::random(small_params().bits, rng));
  }
  std::vector<batch::DecodeHypothesis> hypotheses;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    hypotheses.push_back({&schedules[i], &targets[i]});
  }

  for (const Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyPlus, Algorithm::kGreedyStar,
        Algorithm::kBruteForce}) {
    SCOPED_TRACE(to_string(algorithm));
    batch::BatchDecoder batched(config);
    const auto results = batched.decode(algorithm, context, hypotheses);
    ASSERT_EQ(results.size(), hypotheses.size());
    for (std::size_t i = 0; i < hypotheses.size(); ++i) {
      SCOPED_TRACE(i);
      batch::DecodeWorkspace fresh;
      batch::BatchDecoder one(config, &fresh);
      expect_same_result(one.decode_one(algorithm, context, hypotheses[i]),
                         results[i]);
    }
  }
}

TEST(BatchKernelParity, WorkspaceReuseAcrossPairs) {
  // One explicit workspace carried across different pairs, constraints,
  // and algorithms: stale scratch must never leak into a later decode.
  batch::DecodeWorkspace workspace;
  for (const std::uint64_t seed : {201u, 202u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 1.5, seconds(std::int64_t{1}));
    for (const bool sized : {false, true}) {
      auto config = small_config();
      if (sized) config.size_constraint = SizeConstraint{16};
      const MatchContext context =
          MatchContext::build(instance.marked.flow, instance.downstream,
                              config.max_delay, config.size_constraint);
      batch::BatchDecoder decoder(config, &workspace);
      const batch::DecodeHypothesis hyp{&instance.marked.schedule,
                                        &instance.marked.watermark};
      for (const Algorithm algorithm :
           {Algorithm::kBruteForce, Algorithm::kGreedyStar,
            Algorithm::kGreedyPlus, Algorithm::kGreedy}) {
        SCOPED_TRACE(to_string(algorithm));
        batch::DecodeWorkspace fresh;
        batch::BatchDecoder reference(config, &fresh);
        expect_same_result(
            reference.decode_one(algorithm, context, hyp),
            decoder.decode_one(algorithm, context, hyp));
      }
    }
  }
}

TEST(BatchKernelParity, KernelModesAgree) {
  // The vectorized and scalar kernel variants perform identical integer
  // arithmetic; flipping the dispatch must not change any field.
  const auto saved = batch::kernel_mode();
  const auto instance =
      make_small_instance(211, 1.0, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(instance.marked.flow, instance.downstream,
                          config.max_delay, config.size_constraint);
  const batch::DecodeHypothesis hyp{&instance.marked.schedule,
                                    &instance.marked.watermark};
  for (const Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyPlus, Algorithm::kGreedyStar,
        Algorithm::kBruteForce}) {
    SCOPED_TRACE(to_string(algorithm));
    batch::set_kernel_mode(batch::KernelMode::kScalar);
    batch::BatchDecoder scalar_decoder(config);
    const auto scalar = scalar_decoder.decode_one(algorithm, context, hyp);
    batch::set_kernel_mode(batch::KernelMode::kVectorized);
    batch::BatchDecoder vector_decoder(config);
    const auto vectorized = vector_decoder.decode_one(algorithm, context, hyp);
    expect_same_result(scalar, vectorized);
  }
  batch::set_kernel_mode(saved);
}

TEST(BatchKernelParity, TcplibPaperScale) {
  // Paper-scale parameters over the tcplib-style generator (brute force
  // excluded: exponential).
  const traffic::TcplibTelnetModel model;
  const Flow flow = model.generate(400, 0, 271);
  Rng rng(272);
  const Embedder embedder(WatermarkParams{}, 273);
  const WatermarkedFlow marked =
      embedder.embed(flow, Watermark::random(24, rng));
  const traffic::UniformPerturber perturber(seconds(std::int64_t{7}), 274);
  const traffic::PoissonChaffInjector chaff(5.0, 275);
  const Flow downstream = chaff.apply(perturber.apply(marked.flow));

  CorrelatorConfig config;  // defaults: Delta=7s, h=7, bound=10^6
  check_batch_parity(marked, downstream, config, /*include_brute=*/false);
}

TEST(BatchKernelApi, RejectsMismatchedContextAndBadHypotheses) {
  const auto a = make_small_instance(221, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(a.marked.flow, a.downstream, config.max_delay,
                          config.size_constraint);
  batch::BatchDecoder decoder(config);

  // A context built under a different key is a precondition violation.
  auto other = config;
  other.max_delay = seconds(std::int64_t{2});
  batch::BatchDecoder mismatched(other);
  const batch::DecodeHypothesis hyp{&a.marked.schedule, &a.marked.watermark};
  EXPECT_THROW(mismatched.decode_one(Algorithm::kGreedyPlus, context, hyp),
               InvalidArgument);

  // Null schedule / target pointers are rejected, not dereferenced.
  EXPECT_THROW(decoder.decode_one(Algorithm::kGreedyPlus, context,
                                  batch::DecodeHypothesis{}),
               InvalidArgument);
  const batch::DecodeHypothesis no_target{&a.marked.schedule, nullptr};
  EXPECT_THROW(decoder.decode_one(Algorithm::kGreedyPlus, context, no_target),
               InvalidArgument);

  // A target of the wrong length cannot build a plan.
  Rng rng(222);
  const Watermark wrong_length = Watermark::random(7, rng);
  const batch::DecodeHypothesis bad{&a.marked.schedule, &wrong_length};
  EXPECT_THROW(decoder.decode_one(Algorithm::kGreedyPlus, context, bad),
               InvalidArgument);

  // Config preconditions mirror the Correlator's.
  auto negative = config;
  negative.max_delay = -1;
  EXPECT_THROW(batch::BatchDecoder{negative}, InvalidArgument);
  auto zero_bound = config;
  zero_bound.cost_bound = 0;
  EXPECT_THROW(batch::BatchDecoder{zero_bound}, InvalidArgument);
}

TEST(BatchKernelIntegration, CorrelatePreparedMatchesCorrelate) {
  // The public batched entry point, with and without a caller-prebuilt
  // SoaPlan, against the classic scalar path.
  const auto instance =
      make_small_instance(241, 1.0, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(instance.marked.flow, instance.downstream,
                          config.max_delay, config.size_constraint);
  batch::SoaPlan plan;
  plan.build(instance.marked.schedule, instance.marked.watermark);
  for (const Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyPlus, Algorithm::kGreedyStar,
        Algorithm::kBruteForce}) {
    SCOPED_TRACE(to_string(algorithm));
    const Correlator correlator(config, algorithm);
    const auto scalar =
        correlator.correlate(instance.marked, instance.downstream);
    expect_same_result(scalar,
                       correlator.correlate_prepared(
                           instance.marked, instance.downstream, context));
    expect_same_result(
        scalar, correlator.correlate_prepared(instance.marked,
                                              instance.downstream, context,
                                              &plan));
  }

  // A context for another pair falls back to the cold scalar path instead
  // of decoding against the wrong candidate sets.
  const auto other = make_small_instance(242, 1.0, seconds(std::int64_t{1}));
  const Correlator correlator(config, Algorithm::kGreedyPlus);
  expect_same_result(correlator.correlate(other.marked, other.downstream),
                     correlator.correlate_prepared(other.marked,
                                                   other.downstream, context));
}

TEST(BatchKernelIntegration, CorrelateHypothesesMatchesPerHypothesisRuns) {
  const auto instance =
      make_small_instance(251, 1.0, seconds(std::int64_t{1}));
  const auto config = small_config();

  std::vector<KeySchedule> schedules;
  std::vector<Watermark> targets;
  Rng rng(252);
  schedules.push_back(instance.marked.schedule);
  targets.push_back(instance.marked.watermark);
  for (std::uint64_t key = 3900; key < 3905; ++key) {
    schedules.push_back(KeySchedule::create(
        small_params(), instance.marked.flow.size(), key));
    targets.push_back(Watermark::random(small_params().bits, rng));
  }
  std::vector<batch::DecodeHypothesis> hypotheses;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    hypotheses.push_back({&schedules[i], &targets[i]});
  }

  for (const Algorithm algorithm :
       {Algorithm::kGreedyPlus, Algorithm::kGreedyStar}) {
    SCOPED_TRACE(to_string(algorithm));
    const Correlator correlator(config, algorithm);
    const auto batched = correlator.correlate_hypotheses(
        instance.marked.flow, hypotheses, instance.downstream);
    ASSERT_EQ(batched.size(), hypotheses.size());
    for (std::size_t i = 0; i < hypotheses.size(); ++i) {
      SCOPED_TRACE(i);
      const WatermarkedFlow hypothesis{instance.marked.flow, schedules[i],
                                       targets[i]};
      expect_same_result(
          correlator.correlate(hypothesis, instance.downstream), batched[i]);
    }
  }
}

TEST(BatchKernelIntegration, QimBatchDecodeMatchesScalar) {
  // The flat parity sweep over many key hypotheses, including a schedule
  // the flow is too short for (nullopt must round-trip).
  const traffic::PoissonFlowModel model(0.5);
  const Flow flow = model.generate(120, 0, 261);
  QimParams params;
  params.bits = 8;
  params.redundancy = 2;
  Rng rng(262);
  const Watermark wm = Watermark::random(params.bits, rng);
  const QimEmbedder embedder(params, 263);
  const QimWatermarkedFlow marked = embedder.embed(flow, wm);

  std::vector<KeySchedule> schedules;
  schedules.push_back(marked.schedule);
  for (std::uint64_t key = 4900; key < 4906; ++key) {
    schedules.push_back(
        KeySchedule::create(params.schedule_params(), flow.size(), key));
  }
  // A schedule requiring more packets than the flow has.
  schedules.push_back(KeySchedule::create(params.schedule_params(),
                                          flow.size() + 40, 4999));
  std::vector<const KeySchedule*> pointers;
  for (const auto& schedule : schedules) pointers.push_back(&schedule);

  const auto batched =
      decode_qim_positional_batch(pointers, params.step, marked.flow);
  ASSERT_EQ(batched.size(), schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    SCOPED_TRACE(i);
    const auto scalar =
        decode_qim_positional(schedules[i], params.step, marked.flow);
    ASSERT_EQ(scalar.has_value(), batched[i].has_value());
    if (scalar) {
      EXPECT_EQ(*scalar, *batched[i]);
    }
  }
  // The embedded schedule decodes its own watermark exactly.
  ASSERT_TRUE(batched[0].has_value());
  EXPECT_EQ(*batched[0], wm);
}

TEST(BatchKernelScan, BatchedWindowScanMatchesReference) {
  // scan_match_windows_batched must reproduce the counting reference's
  // windows *and* recorded cost over adversarial shapes: disjoint ranges,
  // empty sides, heavy overlap, duplicate timestamps.
  Rng rng(231);
  for (int round = 0; round < 40; ++round) {
    SCOPED_TRACE(round);
    const std::size_t n_up = rng.uniform_i64(0, 24);
    const std::size_t n_down = rng.uniform_i64(0, 48);
    std::vector<TimeUs> up;
    std::vector<TimeUs> down;
    TimeUs t = 0;
    for (std::size_t i = 0; i < n_up; ++i) {
      t += rng.uniform_i64(0, 2'000'000);
      up.push_back(t);
    }
    t = rng.uniform_i64(0, 1'000'000);
    for (std::size_t j = 0; j < n_down; ++j) {
      t += rng.uniform_i64(0, 2'000'000);
      down.push_back(t);
    }
    const DurationUs delta = rng.uniform_i64(1, 3'000'000);

    CostMeter reference_meter;
    const auto reference =
        scan_match_windows(up, down, delta, reference_meter);
    CostMeter batched_meter;
    std::vector<MatchWindow> batched;
    scan_match_windows_batched(up, down, delta, batched_meter, batched);

    ASSERT_EQ(reference.size(), batched.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i], batched[i]) << "window " << i;
    }
    EXPECT_EQ(reference_meter.accesses(), batched_meter.accesses());
  }
}

}  // namespace
}  // namespace sscor
