// Robustness suite for the crash-safe live-feed daemon.
//
// Four layers, bottom up:
//
//   * frame codec / parser — round-trips, garbage quarantine, resync
//     accounting, chunking independence, reconnect reset semantics;
//   * reconnect backoff — schedules are a pure function of (policy,
//     seed): replayable, resettable, capped;
//   * socket transport — FrameFeeder -> SocketPacketSource delivers the
//     stream exactly once across clean runs and forced frame-boundary
//     disconnects, gives up on an unreachable endpoint, stops on demand,
//     and degrades without corruption behind the chaos proxy;
//   * durability — engine snapshot/restore continues the verdict stream
//     byte-identically at shard counts 1 and 8, and a real SIGKILL at a
//     commit boundary (fork + DurabilityOptions::sigkill_after_commits)
//     followed by `resume` re-emits the uninterrupted run's verdicts
//     exactly: committed ones from the WAL, the rest recomputed.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "sscor/experiment/stream_corpus.hpp"
#include "sscor/stream/chaos_proxy.hpp"
#include "sscor/stream/durability.hpp"
#include "sscor/stream/frame.hpp"
#include "sscor/stream/socket_source.hpp"
#include "sscor/stream/stream_engine.hpp"
#include "sscor/util/backoff.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/time.hpp"

namespace sscor::stream {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string path = testing::TempDir() + "sscor_robustness_" + name;
  std::filesystem::remove_all(path);
  return path;
}

StreamPacket make_packet(std::size_t flow, std::int64_t timestamp,
                         std::uint32_t size, bool chaff) {
  StreamPacket packet;
  packet.tuple = experiment::stream_corpus_tuple(flow);
  packet.packet.timestamp = timestamp;
  packet.packet.size = size;
  packet.packet.is_chaff = chaff;
  return packet;
}

bool same_packet(const StreamPacket& a, const StreamPacket& b) {
  return a.tuple == b.tuple && a.packet == b.packet;
}

// ---------------------------------------------------------------------------
// Frame codec and parser.

TEST(FrameCodec, PacketRoundTrip) {
  const StreamPacket original = make_packet(3, 123456789, 512, true);
  const std::string encoded = encode_packet_frame(original);
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + kPacketPayloadBytes);

  FrameParser parser;
  parser.feed(encoded);
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kPacket);

  StreamPacket decoded;
  ASSERT_TRUE(decode_packet_payload(frame->payload, decoded));
  EXPECT_TRUE(same_packet(original, decoded));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.resyncs(), 0u);
  EXPECT_EQ(parser.bytes_quarantined(), 0u);
}

TEST(FrameParser, QuarantinesGarbageAndResyncsPastCorruption) {
  FrameParser parser;

  // Pure garbage with no sync mark is quarantined byte-for-byte.
  parser.feed("not a frame!");
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.bytes_quarantined(), 12u);

  // A CRC-corrupted frame is abandoned (resync) and the healthy frame
  // behind it still parses.
  std::string corrupt = encode_heartbeat();
  corrupt[8] ^= 0x01;  // flip a CRC byte
  parser.feed(corrupt + encode_hello());
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kHello);
  EXPECT_EQ(frame->payload, kHelloPayload);
  EXPECT_GE(parser.resyncs(), 1u);
  EXPECT_GT(parser.bytes_quarantined(), 12u);
  EXPECT_EQ(parser.frames_parsed(), 1u);
}

TEST(FrameParser, ChunkingIndependence) {
  std::string stream = encode_hello();
  stream += "junk\xa5 bytes";
  stream += encode_packet_frame(make_packet(1, 1000, 64, false));
  stream += encode_heartbeat();
  std::string torn = encode_packet_frame(make_packet(2, 2000, 128, true));
  torn[9] ^= 0x40;  // corrupt mid-header
  stream += torn;
  stream += encode_end();

  const auto parse = [&](std::size_t chunk) {
    FrameParser parser;
    std::vector<Frame> frames;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      parser.feed(std::string_view(stream).substr(
          i, std::min(chunk, stream.size() - i)));
      while (auto frame = parser.next()) frames.push_back(*frame);
    }
    return std::tuple(frames, parser.frames_parsed(), parser.resyncs(),
                      parser.bytes_quarantined());
  };

  const auto whole = parse(stream.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{13}}) {
    const auto split = parse(chunk);
    EXPECT_EQ(std::get<1>(split), std::get<1>(whole)) << "chunk " << chunk;
    EXPECT_EQ(std::get<2>(split), std::get<2>(whole)) << "chunk " << chunk;
    EXPECT_EQ(std::get<3>(split), std::get<3>(whole)) << "chunk " << chunk;
    const auto& a = std::get<0>(whole);
    const auto& b = std::get<0>(split);
    ASSERT_EQ(a.size(), b.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].type, b[i].type);
      EXPECT_EQ(a[i].payload, b[i].payload);
    }
  }
}

TEST(FrameParser, ResetStreamDropsPartialInputButKeepsCounters) {
  FrameParser parser;
  parser.feed(encode_hello());
  ASSERT_TRUE(parser.next().has_value());

  // Half a frame buffered, then the connection dies: reset_stream().
  const std::string packet = encode_packet_frame(make_packet(4, 500, 32, false));
  parser.feed(packet.substr(0, 7));
  parser.reset_stream();
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.frames_parsed(), 1u);

  // The next connection's bytes parse from a clean slate.
  parser.feed(packet);
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kPacket);
  EXPECT_EQ(parser.frames_parsed(), 2u);
}

// ---------------------------------------------------------------------------
// Backoff.

TEST(Backoff, ScheduleIsDeterministicPerSeedAndReplayableAfterReset) {
  BackoffPolicy policy;
  policy.initial_ms = 100;
  policy.max_ms = 2000;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;

  BackoffSchedule a(policy, 42);
  BackoffSchedule b(policy, 42);
  std::vector<std::int64_t> first;
  for (int i = 0; i < 12; ++i) {
    const std::int64_t delay = a.next_delay_ms();
    EXPECT_EQ(delay, b.next_delay_ms());
    first.push_back(delay);
  }
  EXPECT_EQ(a.attempts(), 12u);

  // reset() replays the identical schedule: same seed, fresh stream.
  a.reset();
  EXPECT_EQ(a.attempts(), 0u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(a.next_delay_ms(), first[i]);

  // A different seed produces a different jitter stream.
  BackoffSchedule c(policy, 43);
  bool any_differs = false;
  for (int i = 0; i < 12; ++i) any_differs |= (c.next_delay_ms() != first[i]);
  EXPECT_TRUE(any_differs);
}

TEST(Backoff, DelaysRespectJitterBoundsAndCap) {
  BackoffPolicy policy;
  policy.initial_ms = 50;
  policy.max_ms = 400;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;

  BackoffSchedule schedule(policy, 7);
  std::int64_t base = policy.initial_ms;
  for (int i = 0; i < 16; ++i) {
    const std::int64_t delay = schedule.next_delay_ms();
    EXPECT_LE(delay, base);
    EXPECT_GE(delay, static_cast<std::int64_t>(
                         static_cast<double>(base) * (1.0 - policy.jitter)) -
                         1);
    EXPECT_LE(delay, policy.max_ms);
    base = std::min<std::int64_t>(
        policy.max_ms,
        static_cast<std::int64_t>(static_cast<double>(base) *
                                  policy.multiplier));
  }
}

// ---------------------------------------------------------------------------
// Socket transport.

std::vector<StreamPacket> sample_stream(std::size_t count) {
  std::vector<StreamPacket> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets.push_back(make_packet(i % 5, 1000 + static_cast<std::int64_t>(i) * 10,
                                  100 + static_cast<std::uint32_t>(i), i % 3 == 0));
  }
  return packets;
}

std::vector<StreamPacket> drain_source(SocketPacketSource& source) {
  std::vector<StreamPacket> received;
  while (auto packet = source.next()) received.push_back(*packet);
  return received;
}

TEST(SocketSource, DeliversFramedStreamWithHeartbeatsAndEndsCleanly) {
  const auto packets = sample_stream(200);
  FrameFeederOptions feed_options;
  feed_options.heartbeat_every = 7;
  FrameFeeder feeder(packets, feed_options);
  feeder.start();

  SocketSourceOptions options;
  options.endpoint = "127.0.0.1:" + std::to_string(feeder.port());
  options.backoff.initial_ms = 5;
  options.backoff.max_ms = 50;
  SocketPacketSource source(options);

  const auto received = drain_source(source);
  ASSERT_EQ(received.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_TRUE(same_packet(packets[i], received[i])) << "packet " << i;
  }
  const auto stats = source.stats();
  EXPECT_TRUE(stats.ended_cleanly);
  EXPECT_EQ(stats.connects, 1u);
  EXPECT_EQ(stats.packets, packets.size());
  EXPECT_GT(stats.heartbeats, 0u);
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  feeder.stop();
}

TEST(SocketSource, ReconnectsAcrossFrameBoundaryDropsWithZeroLoss) {
  const auto packets = sample_stream(120);
  FrameFeederOptions feed_options;
  feed_options.drop_after_frames = 17;  // forced disconnect every 17 packets
  FrameFeeder feeder(packets, feed_options);
  feeder.start();

  SocketSourceOptions options;
  options.endpoint = "127.0.0.1:" + std::to_string(feeder.port());
  options.backoff.initial_ms = 2;
  options.backoff.max_ms = 20;
  options.max_reconnects = 32;
  SocketPacketSource source(options);

  const auto received = drain_source(source);
  ASSERT_EQ(received.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_TRUE(same_packet(packets[i], received[i])) << "packet " << i;
  }
  const auto stats = source.stats();
  EXPECT_TRUE(stats.ended_cleanly);
  EXPECT_GE(stats.disconnects, 1u);
  EXPECT_GT(feeder.connections(), 1u);
  feeder.stop();
}

TEST(SocketSource, GivesUpAfterReconnectBudgetOnUnreachableEndpoint) {
  // Bind an ephemeral port, note it, close it: dialing it now fails fast.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(fd);

  SocketSourceOptions options;
  options.endpoint = "127.0.0.1:" + std::to_string(dead_port);
  options.backoff.initial_ms = 1;
  options.backoff.max_ms = 5;
  options.max_reconnects = 3;
  SocketPacketSource source(options);

  EXPECT_FALSE(source.next().has_value());
  const auto stats = source.stats();
  EXPECT_TRUE(stats.gave_up);
  EXPECT_FALSE(stats.ended_cleanly);
  EXPECT_EQ(stats.connects, 0u);
  EXPECT_GE(stats.reconnect_attempts, 3u);
}

TEST(SocketSource, StopsPromptlyWhenShouldStopFires) {
  SocketSourceOptions options;
  options.endpoint = "127.0.0.1:1";
  options.backoff.initial_ms = 1;
  options.max_reconnects = 1 << 20;  // only should_stop can end this
  options.should_stop = [] { return true; };
  SocketPacketSource source(options);

  EXPECT_FALSE(source.next().has_value());
  EXPECT_TRUE(source.stats().stopped);
}

TEST(ChaosProxy, LossyRelayNeverCorruptsDeliveredPackets) {
  const auto packets = sample_stream(150);
  FrameFeederOptions feed_options;
  feed_options.pace_us = 200;  // keep the in-flight window small
  FrameFeeder feeder(packets, feed_options);
  feeder.start();

  ChaosProxyOptions proxy_options;
  proxy_options.upstream = "127.0.0.1:" + std::to_string(feeder.port());
  proxy_options.fault_rate = 0.25;
  proxy_options.seed = 11;
  ChaosProxy proxy(proxy_options);
  proxy.start();

  SocketSourceOptions options;
  options.endpoint = "127.0.0.1:" + std::to_string(proxy.port());
  options.backoff.initial_ms = 2;
  options.backoff.max_ms = 20;
  options.read_timeout_ms = 500;
  options.max_reconnects = 6;
  SocketPacketSource source(options);

  const auto received = drain_source(source);

  // Faults may LOSE packets (drops, corruption -> quarantine) but the CRC
  // makes inventing or altering one next to impossible: everything
  // delivered must be a subsequence of the original stream.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    while (pos < packets.size() && !same_packet(packets[pos], received[i])) {
      ++pos;
    }
    ASSERT_LT(pos, packets.size())
        << "delivered packet " << i << " not found in original order";
    ++pos;
  }

  const auto stats = source.stats();
  EXPECT_TRUE(stats.ended_cleanly || stats.gave_up || stats.stopped);
  proxy.stop();
  feeder.stop();
}

// ---------------------------------------------------------------------------
// Durability: snapshot/restore and crash-resume parity.

WatermarkParams corpus_watermark() {
  WatermarkParams params;
  params.bits = 8;
  params.redundancy = 2;
  return params;
}

CorrelatorConfig corpus_config() {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  config.hamming_threshold = 2;
  return config;
}

experiment::StreamCorpus make_corpus(std::uint64_t seed) {
  experiment::StreamCorpusConfig config;
  config.watermarked_flows = 2;
  config.decoy_flows = 4;
  config.packets_per_flow = 300;
  config.chaff_rate = 2.0;
  config.seed = seed;
  config.watermark = corpus_watermark();
  return experiment::make_stream_corpus(config);
}

StreamOptions engine_options(std::size_t shards, std::size_t batch) {
  StreamOptions options;
  options.table.shards = shards;
  options.batch_size = batch;
  return options;
}

/// One run with drains at every batch boundary (the daemon's cadence);
/// when `snapshot_at` is a nonzero batch multiple, the engine is torn
/// down there via snapshot() and rebuilt fresh via restore().
std::vector<std::string> run_with_restart(const experiment::StreamCorpus& corpus,
                                          std::size_t shards, std::size_t batch,
                                          std::uint64_t snapshot_at) {
  const StreamOptions options = engine_options(shards, batch);
  auto engine = std::make_unique<StreamEngine>(corpus.upstreams,
                                               corpus_config(), options);
  std::vector<std::string> emitted;
  const auto drain = [&] {
    for (const auto& verdict : engine->drain_verdicts()) {
      emitted.push_back(encode_verdict(verdict));
    }
  };
  for (const StreamPacket& packet : corpus.packets) {
    engine->ingest(packet);
    if (engine->packets_ingested() % batch == 0) drain();
    if (snapshot_at != 0 && engine->packets_ingested() == snapshot_at) {
      engine->flush();
      drain();
      const EngineSnapshot snapshot = engine->snapshot();
      engine = std::make_unique<StreamEngine>(corpus.upstreams,
                                              corpus_config(), options);
      engine->restore(snapshot);
    }
  }
  engine->finish();
  drain();
  return emitted;
}

TEST(Durability, SnapshotRestoreContinuesVerdictStreamExactly) {
  const auto corpus = make_corpus(2026);
  constexpr std::size_t kBatch = 64;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const auto reference = run_with_restart(corpus, shards, kBatch, 0);
    ASSERT_FALSE(reference.empty());
    const auto restarted =
        run_with_restart(corpus, shards, kBatch, kBatch * 6);
    EXPECT_EQ(restarted, reference) << "shards " << shards;
  }
}

constexpr std::uint64_t kFingerprint = 0x5c0fde57;

/// The daemon loop distilled: commit-before-emit against a DurableSession,
/// drains and snapshot attempts at batch boundaries, resume replays the
/// WAL then skips snapshotted input.  Returns the emitted verdict stream.
std::vector<std::string> run_daemon(const experiment::StreamCorpus& corpus,
                                    std::size_t shards, std::size_t batch,
                                    const std::string& state_dir, bool resume,
                                    std::int64_t sigkill_after_commits) {
  StreamEngine engine(corpus.upstreams, corpus_config(),
                      engine_options(shards, batch));
  DurabilityOptions durability;
  durability.state_dir = state_dir;
  durability.snapshot_interval = 256;
  durability.sigkill_after_commits = sigkill_after_commits;
  DurableSession session(durability, kFingerprint);

  std::vector<std::string> emitted;
  const auto drain = [&] {
    for (const auto& verdict : engine.drain_verdicts()) {
      if (!session.commit(verdict)) continue;
      emitted.push_back(encode_verdict(verdict));
    }
  };

  std::uint64_t skip = 0;
  if (resume) {
    ResumeState recovered = session.resume();
    for (const auto& verdict : recovered.committed) {
      emitted.push_back(encode_verdict(verdict));
    }
    if (recovered.have_snapshot) {
      engine.restore(recovered.snapshot);
      skip = recovered.snapshot.next_seq;
    }
  } else {
    session.begin_fresh();
  }

  for (const StreamPacket& packet : corpus.packets) {
    if (skip > 0) {
      --skip;
      continue;
    }
    engine.ingest(packet);
    if (engine.packets_ingested() % batch == 0) {
      drain();
      session.maybe_snapshot(engine);
    }
  }
  engine.finish();
  drain();
  return emitted;
}

TEST(Durability, SigkillAtCommitBoundaryThenResumeMatchesUninterruptedRun) {
  const auto corpus = make_corpus(777);
  constexpr std::size_t kBatch = 64;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const std::string tag = std::to_string(shards);
    const std::string ref_dir = temp_dir("ref" + tag);
    const std::string crash_dir = temp_dir("crash" + tag);

    const auto reference =
        run_daemon(corpus, shards, kBatch, ref_dir, false, -1);
    ASSERT_GT(reference.size(), 3u) << "corpus too small to crash mid-run";

    // Child process: run the daemon loop with a SIGKILL armed after the
    // 3rd fresh commit — a real, unhandleable kill at the worst moment.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        run_daemon(corpus, shards, kBatch, crash_dir, false, 3);
      } catch (...) {
        _exit(7);
      }
      _exit(0);  // not reached when the kill fires
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child was not killed";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Resume in this process: WAL replay + snapshot restore + the rest of
    // the feed must reproduce the uninterrupted verdict stream exactly.
    const auto resumed =
        run_daemon(corpus, shards, kBatch, crash_dir, true, -1);
    EXPECT_EQ(resumed, reference) << "shards " << shards;

    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(crash_dir);
  }
}

StreamVerdict fabricate_verdict(std::size_t flow, std::uint64_t flow_seq,
                                std::size_t upstream, VerdictKind kind) {
  StreamVerdict verdict;
  verdict.tuple = experiment::stream_corpus_tuple(flow);
  verdict.flow_seq = flow_seq;
  verdict.upstream = upstream;
  verdict.kind = kind;
  verdict.early = kind == VerdictKind::kNegative;
  verdict.packets_seen = 40 + flow_seq;
  return verdict;
}

TEST(Durability, VerdictCodecRoundTrip) {
  const StreamVerdict verdict =
      fabricate_verdict(5, 91, 1, VerdictKind::kDegraded);
  const std::string encoded = encode_verdict(verdict);
  const StreamVerdict decoded = decode_verdict(encoded);
  EXPECT_EQ(encode_verdict(decoded), encoded);
  EXPECT_EQ(decoded.flow_seq, verdict.flow_seq);
  EXPECT_EQ(decoded.upstream, verdict.upstream);
  EXPECT_EQ(decoded.kind, verdict.kind);
  EXPECT_EQ(decoded.tuple, verdict.tuple);
  EXPECT_THROW(decode_verdict("not a verdict"), InvalidArgument);
}

TEST(Durability, WalTornTailIsRepairedAndReplayDeduplicates) {
  const std::string state_dir = temp_dir("torn");
  const std::vector<StreamVerdict> verdicts = {
      fabricate_verdict(0, 1, 0, VerdictKind::kNegative),
      fabricate_verdict(1, 2, 0, VerdictKind::kPositive),
      fabricate_verdict(2, 3, 1, VerdictKind::kEvicted),
  };

  std::string wal_path;
  {
    DurabilityOptions options;
    options.state_dir = state_dir;
    DurableSession session(options, kFingerprint);
    session.begin_fresh();
    for (const auto& verdict : verdicts) {
      EXPECT_TRUE(session.commit(verdict));
    }
    wal_path = session.wal_path();
  }

  // A crash mid-append leaves a torn (newline-less) tail; resume must
  // repair it and keep every committed verdict.
  {
    std::ofstream tail(wal_path, std::ios::app | std::ios::binary);
    tail << "torn-partial-record-without-newline";
  }

  DurabilityOptions options;
  options.state_dir = state_dir;
  DurableSession session(options, kFingerprint);
  const ResumeState recovered = session.resume();
  ASSERT_EQ(recovered.committed.size(), verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(encode_verdict(recovered.committed[i]),
              encode_verdict(verdicts[i]));
  }

  // Catch-up dedup: an already-committed verdict is suppressed, a new one
  // is accepted.
  EXPECT_FALSE(session.commit(verdicts[1]));
  EXPECT_TRUE(session.commit(fabricate_verdict(3, 4, 1, VerdictKind::kNegative)));
  std::filesystem::remove_all(state_dir);
}

TEST(Durability, FingerprintMismatchRefusesResume) {
  const std::string state_dir = temp_dir("fingerprint");
  {
    DurabilityOptions options;
    options.state_dir = state_dir;
    DurableSession session(options, kFingerprint);
    session.begin_fresh();
    EXPECT_TRUE(
        session.commit(fabricate_verdict(0, 1, 0, VerdictKind::kNegative)));
  }

  DurabilityOptions options;
  options.state_dir = state_dir;
  DurableSession session(options, kFingerprint + 1);
  EXPECT_THROW(session.resume(), IoError);
  std::filesystem::remove_all(state_dir);
}

}  // namespace
}  // namespace sscor::stream
