// Tests for the streaming flow table: ring-buffer semantics, the three
// eviction bounds (idle TTL, flow count, buffered-packet memory cap) held
// through churn, tombstone behaviour, and the engine-level eviction
// contract — every flow cut short still yields a verdict, and flows never
// evicted yield verdicts identical to an unbounded run.
//
// The StreamStress suite at the bottom drives concurrent multi-shard
// ingest — with and without a telemetry scraper hammering the stats
// endpoints — and is also run under TSan by run_checks.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "sscor/experiment/stream_corpus.hpp"
#include "sscor/net/http_client.hpp"
#include "sscor/stream/flow_table.hpp"
#include "sscor/stream/stream_engine.hpp"
#include "sscor/stream/telemetry.hpp"

namespace sscor::stream {
namespace {

net::FiveTuple tuple_n(std::size_t n) {
  return experiment::stream_corpus_tuple(n);
}

PacketRecord packet_at(TimeUs t) {
  PacketRecord packet;
  packet.timestamp = t;
  packet.size = 64;
  return packet;
}

TEST(TimestampRing, HoldsNewestOldestFirst) {
  TimestampRing ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.size(), 0u);

  ring.push(10);
  ring.push(20);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0), 10);
  EXPECT_EQ(ring.at(1), 20);
  EXPECT_EQ(ring.newest(), 20);
  EXPECT_EQ(ring.dropped(), 0u);

  ring.push(30);
  ring.push(40);  // overwrites 10
  ring.push(50);  // overwrites 20
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.at(0), 30);
  EXPECT_EQ(ring.at(1), 40);
  EXPECT_EQ(ring.at(2), 50);
  EXPECT_EQ(ring.newest(), 50);
}

TEST(FlowTable, ShardAssignmentIsPureAndInRange) {
  FlowTableConfig config;
  config.shards = 8;
  const FlowTable table(config);
  for (std::size_t n = 0; n < 64; ++n) {
    const std::size_t shard = table.shard_of(tuple_n(n));
    EXPECT_LT(shard, table.shard_count());
    EXPECT_EQ(shard, table.shard_of(tuple_n(n))) << "not a pure function";
  }
}

TEST(FlowTable, FlowCountBoundHoldsUnderChurnAndEvictsLru) {
  FlowTableConfig config;
  config.max_flows = 4;
  FlowTable table(config);
  std::vector<EvictedFlow> evicted;

  // 16 distinct flows through a 4-entry table, oldest-touched first out.
  for (std::size_t n = 0; n < 16; ++n) {
    table.touch(0, tuple_n(n), packet_at(static_cast<TimeUs>(n)), n, evicted);
    EXPECT_LE(table.flows(), config.max_flows) << "after flow " << n;
  }
  ASSERT_EQ(evicted.size(), 12u);
  for (std::size_t e = 0; e < evicted.size(); ++e) {
    EXPECT_EQ(evicted[e].cause, EvictionCause::kFlowCount);
    // LRU order: the flow created earliest goes first.
    EXPECT_EQ(evicted[e].tuple, tuple_n(e));
  }

  // Touching an existing flow refreshes it: flow 12 survives the next
  // insertion round while the untouched 13 is displaced first.
  table.touch(0, tuple_n(12), packet_at(100), 16, evicted);
  evicted.clear();
  table.touch(0, tuple_n(20), packet_at(101), 17, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].tuple, tuple_n(13));
}

TEST(FlowTable, IdleTtlEvictsAndSplitsFlows) {
  FlowTableConfig config;
  config.idle_ttl = seconds(std::int64_t{10});
  FlowTable table(config);
  std::vector<EvictedFlow> evicted;

  FlowEntry* a = table.touch(0, tuple_n(0), packet_at(0), 0, evicted);
  EXPECT_EQ(a->first_seen_seq, 0u);
  table.touch(0, tuple_n(1), packet_at(seconds(std::int64_t{1})), 1, evicted);
  table.touch(0, tuple_n(1), packet_at(seconds(std::int64_t{8})), 2, evicted);
  EXPECT_TRUE(evicted.empty());

  // At t=12s flow 0 has been idle past the TTL, so touching flow 1 (itself
  // fresh: last packet at 8 s) sweeps flow 0 out...
  table.touch(0, tuple_n(1), packet_at(seconds(std::int64_t{12})), 3, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].tuple, tuple_n(0));
  EXPECT_EQ(evicted[0].cause, EvictionCause::kIdle);
  EXPECT_EQ(table.flows(), 1u);

  // ...and a flow whose own gap exceeds the TTL splits: old instance
  // evicted, new instance created with a fresh first_seen_seq.
  evicted.clear();
  FlowEntry* b =
      table.touch(0, tuple_n(1), packet_at(seconds(std::int64_t{40})), 4,
                  evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].tuple, tuple_n(1));
  EXPECT_EQ(evicted[0].cause, EvictionCause::kIdle);
  EXPECT_EQ(b->first_seen_seq, 4u);
  EXPECT_EQ(b->packets, 1u);
}

TEST(FlowTable, MemoryCapHoldsUnconditionally) {
  FlowTableConfig config;
  config.max_buffered_packets = 10;
  FlowTable table(config);
  std::vector<EvictedFlow> evicted;

  FlowEntry* a = table.touch(0, tuple_n(0), packet_at(0), 0, evicted);
  FlowEntry* b = table.touch(0, tuple_n(1), packet_at(1), 1, evicted);
  ASSERT_TRUE(table.add_buffered(0, a, 6, evicted));
  ASSERT_TRUE(table.add_buffered(0, b, 3, evicted));
  EXPECT_EQ(table.buffered_packets(), 9u);
  EXPECT_TRUE(evicted.empty());

  // Charging b past the cap displaces the LRU flow holding buffer (a).
  ASSERT_TRUE(table.add_buffered(0, b, 4, evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].tuple, tuple_n(0));
  EXPECT_EQ(evicted[0].cause, EvictionCause::kMemory);
  EXPECT_LE(table.buffered_packets(), 10u);

  // A single charge bigger than the whole cap can only be satisfied by
  // evicting the charged flow itself: add_buffered reports the dangling
  // entry with `false` and the record lands in `evicted`.
  evicted.clear();
  EXPECT_FALSE(table.add_buffered(0, b, 20, evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].tuple, tuple_n(1));
  EXPECT_EQ(evicted[0].cause, EvictionCause::kMemory);
  EXPECT_EQ(table.flows(), 0u);
  EXPECT_EQ(table.buffered_packets(), 0u);
}

TEST(FlowTable, CapsStayTableWideAcrossShards) {
  // With N shards the per-shard share is floor(total / N); the table-wide
  // count can therefore never exceed the configured totals no matter how
  // flows distribute.
  FlowTableConfig config;
  config.shards = 4;
  config.max_flows = 10;
  config.max_buffered_packets = 40;
  FlowTable table(config);
  std::vector<EvictedFlow> evicted;
  for (std::size_t n = 0; n < 200; ++n) {
    const net::FiveTuple tuple = tuple_n(n);
    const std::size_t shard = table.shard_of(tuple);
    FlowEntry* entry =
        table.touch(shard, tuple, packet_at(static_cast<TimeUs>(n)), n,
                    evicted);
    table.add_buffered(shard, entry, 1 + n % 5, evicted);
    EXPECT_LE(table.flows(), config.max_flows);
    EXPECT_LE(table.buffered_packets(), config.max_buffered_packets);
  }
}

TEST(FlowTable, TombstonesReturnChargeAndAbsorbLatePackets) {
  FlowTableConfig config;
  config.max_buffered_packets = 100;
  FlowTable table(config);
  std::vector<EvictedFlow> evicted;

  FlowEntry* entry = table.touch(0, tuple_n(0), packet_at(0), 0, evicted);
  ASSERT_TRUE(table.add_buffered(0, entry, 50, evicted));
  EXPECT_EQ(table.buffered_packets(), 50u);

  table.tombstone(0, entry);
  EXPECT_TRUE(entry->tombstone);
  EXPECT_EQ(table.buffered_packets(), 0u);

  // A late packet keeps hitting the tombstone instead of opening a fresh
  // flow instance.
  FlowEntry* again = table.touch(0, tuple_n(0), packet_at(5), 1, evicted);
  EXPECT_EQ(again, entry);
  EXPECT_TRUE(again->tombstone);
  EXPECT_EQ(again->packets, 2u);
  EXPECT_EQ(again->first_seen_seq, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level eviction contract, on a deterministic two-phase capture:
// three "early" flows (one watermarked) finish entirely, then three "late"
// decoys arrive.  With max_flows = 4, inserting the late flows must
// displace exactly two idle early flows — no luck involved.

struct TwoPhaseCapture {
  std::vector<WatermarkedFlow> upstreams;
  std::vector<StreamPacket> packets;
  std::vector<net::FiveTuple> early_tuples;
  std::vector<net::FiveTuple> late_tuples;
};

TwoPhaseCapture make_two_phase_capture() {
  // Small watermark so 100-packet flows have capacity for it.
  WatermarkParams watermark;
  watermark.bits = 8;
  watermark.redundancy = 2;  // 32 pairs -> 64 relevant packets

  experiment::StreamCorpusConfig early_config;
  early_config.watermarked_flows = 1;
  early_config.decoy_flows = 2;
  early_config.packets_per_flow = 100;
  early_config.chaff_rate = 1.0;
  early_config.seed = 404;
  early_config.watermark = watermark;
  const experiment::StreamCorpus early =
      experiment::make_stream_corpus(early_config);

  experiment::StreamCorpusConfig late_config;
  late_config.watermarked_flows = 0;
  late_config.decoy_flows = 3;
  late_config.packets_per_flow = 100;
  late_config.seed = 505;
  const experiment::StreamCorpus late =
      experiment::make_stream_corpus(late_config);

  TwoPhaseCapture capture;
  capture.upstreams = early.upstreams;
  capture.early_tuples = early.tuples;
  capture.packets = early.packets;

  // Shift the late flows past the end of the early phase and remap their
  // tuples out of the early tuple range.
  const TimeUs shift =
      early.packets.back().packet.timestamp + seconds(std::int64_t{1});
  for (const StreamPacket& packet : late.packets) {
    StreamPacket shifted = packet;
    shifted.packet.timestamp += shift;
    const auto it = std::find(late.tuples.begin(), late.tuples.end(),
                              packet.tuple);
    const std::size_t index =
        static_cast<std::size_t>(it - late.tuples.begin());
    shifted.tuple = tuple_n(10 + index);
    capture.packets.push_back(shifted);
  }
  for (std::size_t k = 0; k < late.tuples.size(); ++k) {
    capture.late_tuples.push_back(tuple_n(10 + k));
  }
  return capture;
}

CorrelatorConfig corpus_correlator_config() {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  return config;
}

std::vector<StreamVerdict> run_engine(const TwoPhaseCapture& capture,
                                      StreamOptions options) {
  StreamEngine engine(capture.upstreams, corpus_correlator_config(),
                      std::move(options));
  for (const StreamPacket& packet : capture.packets) engine.ingest(packet);
  engine.finish();
  return engine.drain_verdicts();
}

TEST(FlowTable, EvictedFlowsStillYieldVerdicts) {
  const TwoPhaseCapture capture = make_two_phase_capture();

  StreamOptions options;
  options.table.max_flows = 4;  // 3 early + 3 late flows through 4 slots
  options.early_exit = false;   // keep every pair alive until eviction
  const std::vector<StreamVerdict> verdicts = run_engine(capture, options);

  // Every flow instance produced exactly one verdict: 3 early + 3 late,
  // of which exactly two early flows were displaced by the late phase.
  ASSERT_EQ(verdicts.size(), 6u);
  std::size_t evicted_count = 0;
  std::map<net::FiveTuple, std::size_t> per_tuple;
  for (const StreamVerdict& v : verdicts) {
    if (v.kind == VerdictKind::kEvicted) {
      ++evicted_count;
      EXPECT_FALSE(v.result.correlated);
      EXPECT_FALSE(v.result.matching_complete);
      EXPECT_EQ(v.result.cost, v.packets_seen);
      // Only early flows can be displaced (late flows fit in the table).
      EXPECT_NE(std::find(capture.early_tuples.begin(),
                          capture.early_tuples.end(), v.tuple),
                capture.early_tuples.end());
    }
    ++per_tuple[v.tuple];
  }
  EXPECT_EQ(evicted_count, 2u);
  EXPECT_EQ(per_tuple.size(), 6u);
}

TEST(FlowTable, NeverEvictedFlowsMatchUnboundedRun) {
  const TwoPhaseCapture capture = make_two_phase_capture();

  StreamOptions unbounded;
  unbounded.early_exit = false;
  const std::vector<StreamVerdict> golden = run_engine(capture, unbounded);
  ASSERT_EQ(golden.size(), 6u);

  StreamOptions bounded = unbounded;
  bounded.table.max_flows = 4;
  const std::vector<StreamVerdict> capped = run_engine(capture, bounded);
  ASSERT_EQ(capped.size(), golden.size());

  std::map<std::pair<net::FiveTuple, std::size_t>, const StreamVerdict*>
      golden_by_pair;
  for (const StreamVerdict& v : golden) {
    golden_by_pair[{v.tuple, v.upstream}] = &v;
  }

  // A flow the bound never touched must match the unbounded verdict byte
  // for byte — the cap is invisible to survivors.
  std::size_t checked = 0;
  for (const StreamVerdict& v : capped) {
    if (v.kind == VerdictKind::kEvicted) continue;
    const StreamVerdict* want = golden_by_pair[{v.tuple, v.upstream}];
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(v.kind, want->kind);
    EXPECT_EQ(v.flow_seq, want->flow_seq);
    EXPECT_EQ(v.packets_seen, want->packets_seen);
    EXPECT_EQ(v.result.correlated, want->result.correlated);
    EXPECT_EQ(v.result.hamming, want->result.hamming);
    EXPECT_EQ(v.result.cost, want->result.cost);
    ++checked;
  }
  EXPECT_EQ(checked, 4u) << "expected 1 surviving early + 3 late flows";
}

// ---------------------------------------------------------------------------
// Concurrency stress: multi-shard ingest with a worker pool, run under
// TSan by run_checks.sh (ctest regex "StreamStress").  The assertion is
// thread-sanity plus determinism: the threaded run must equal the serial
// run verdict for verdict.

TEST(StreamStress, ConcurrentShardIngestMatchesSerial) {
  const TwoPhaseCapture capture = make_two_phase_capture();

  StreamOptions serial;
  serial.table.shards = 4;
  serial.table.max_flows = 8;
  serial.table.idle_ttl = seconds(std::int64_t{3600});
  serial.batch_size = 64;
  serial.threads = 1;
  const std::vector<StreamVerdict> golden = run_engine(capture, serial);

  StreamOptions threaded = serial;
  threaded.threads = 4;
  const std::vector<StreamVerdict> verdicts = run_engine(capture, threaded);

  ASSERT_EQ(verdicts.size(), golden.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].tuple, golden[i].tuple) << "verdict " << i;
    EXPECT_EQ(verdicts[i].flow_seq, golden[i].flow_seq) << "verdict " << i;
    EXPECT_EQ(verdicts[i].upstream, golden[i].upstream) << "verdict " << i;
    EXPECT_EQ(verdicts[i].kind, golden[i].kind) << "verdict " << i;
    EXPECT_EQ(verdicts[i].result.cost, golden[i].result.cost)
        << "verdict " << i;
  }
}

// The observer-only contract under contention: a scraper thread hammers
// /metrics, /statusz, /healthz, and engine.status() while the worker pool
// ingests — TSan must stay quiet and the verdict stream must still equal
// the serial golden run.
TEST(StreamStress, ConcurrentScrapeLeavesVerdictsUntouched) {
  const TwoPhaseCapture capture = make_two_phase_capture();

  StreamOptions serial;
  serial.table.shards = 4;
  serial.table.max_flows = 8;
  serial.table.idle_ttl = seconds(std::int64_t{3600});
  serial.batch_size = 64;
  serial.threads = 1;
  const std::vector<StreamVerdict> golden = run_engine(capture, serial);

  StreamOptions threaded = serial;
  threaded.threads = 4;
  StreamEngine engine(capture.upstreams, corpus_correlator_config(),
                      threaded);
  StreamTelemetry telemetry(engine);
  telemetry.start("127.0.0.1", 0);
  const std::uint16_t port = telemetry.port();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const net::HttpResult metrics =
          net::http_get("127.0.0.1", port, "/metrics");
      EXPECT_EQ(metrics.status, 200);
      const net::HttpResult statusz =
          net::http_get("127.0.0.1", port, "/statusz");
      EXPECT_EQ(statusz.status, 200);
      const net::HttpResult healthz =
          net::http_get("127.0.0.1", port, "/healthz");
      EXPECT_EQ(healthz.status, 200);
      const EngineStatus status = engine.status();
      EXPECT_LE(status.flows_live, 8u);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (const StreamPacket& packet : capture.packets) engine.ingest(packet);
  engine.finish();
  std::vector<StreamVerdict> verdicts = engine.drain_verdicts();

  // Guarantee at least one full scrape round overlapped the run before
  // releasing the scraper (endpoints stay live until telemetry.stop()).
  while (scrapes.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  telemetry.stop();
  EXPECT_GE(scrapes.load(), 1u) << "scraper never completed a round";

  ASSERT_EQ(verdicts.size(), golden.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].tuple, golden[i].tuple) << "verdict " << i;
    EXPECT_EQ(verdicts[i].flow_seq, golden[i].flow_seq) << "verdict " << i;
    EXPECT_EQ(verdicts[i].upstream, golden[i].upstream) << "verdict " << i;
    EXPECT_EQ(verdicts[i].kind, golden[i].kind) << "verdict " << i;
    EXPECT_EQ(verdicts[i].result.cost, golden[i].result.cost)
        << "verdict " << i;
  }
}

}  // namespace
}  // namespace sscor::stream
