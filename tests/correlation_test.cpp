// Tests for the core correlation engine: decode plans, selection state,
// and the four best-watermark algorithms, including the paper's key
// algorithmic invariants:
//
//   * Greedy's Hamming distance lower-bounds Brute Force's (paper §3.3.2).
//   * Greedy* with an unlimited bound never beats Brute Force and always
//     satisfies the order constraint.
//   * Greedy+ selections satisfy the timing and order constraints.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sscor/correlation/brute_force.hpp"
#include "sscor/correlation/correlator.hpp"
#include "sscor/correlation/decode_plan.hpp"
#include "sscor/correlation/greedy.hpp"
#include "sscor/correlation/greedy_plus.hpp"
#include "sscor/correlation/greedy_star.hpp"
#include "sscor/correlation/online.hpp"
#include "sscor/correlation/selection.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

WatermarkParams small_params() {
  WatermarkParams params;
  params.bits = 4;
  params.redundancy = 1;  // 8 pairs -> 16 relevant packets
  params.pair_offset = 1;
  // Large relative to the 0.5 pkt/s test flows so the embedding is nearly
  // error-free even at redundancy 1.
  params.embedding_delay = seconds(std::int64_t{2});
  return params;
}

/// A small correlated instance: watermarked Poisson flow, perturbed and
/// chaffed, with matching sets small enough for Brute Force.
struct SmallInstance {
  WatermarkedFlow marked;
  Flow downstream;
};

SmallInstance make_small_instance(std::uint64_t seed, double chaff_rate,
                                  DurationUs delta) {
  const traffic::PoissonFlowModel model(0.5);
  const Flow flow = model.generate(20, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Watermark wm = Watermark::random(small_params().bits, rng);
  const Embedder embedder(small_params(), mix_seeds(seed, 3));
  SmallInstance instance{embedder.embed(flow, wm), Flow{}};
  const traffic::UniformPerturber perturber(delta, mix_seeds(seed, 4));
  const traffic::PoissonChaffInjector chaff(chaff_rate, mix_seeds(seed, 5));
  instance.downstream = chaff.apply(perturber.apply(instance.marked.flow));
  return instance;
}

TEST(DecodePlan, SlotsSortedUniqueAndConsistent) {
  const auto params = small_params();
  const auto schedule = KeySchedule::create(params, 100, 5);
  Rng rng(6);
  const Watermark target = Watermark::random(params.bits, rng);
  const DecodePlan plan(schedule, target);

  const auto slots = plan.slots();
  ASSERT_EQ(slots.size(), 2 * params.total_pairs());
  for (std::size_t s = 1; s < slots.size(); ++s) {
    EXPECT_LT(slots[s - 1].up_index, slots[s].up_index);
  }
  // pair_slots must point back at slots of the right pair and role.
  for (std::uint32_t bit = 0; bit < plan.bit_count(); ++bit) {
    for (std::uint32_t pair = 0; pair < plan.pairs_per_bit(); ++pair) {
      const PairSlots& ps = plan.pair_slots(bit, pair);
      EXPECT_TRUE(slots[ps.first_slot].is_first);
      EXPECT_FALSE(slots[ps.second_slot].is_first);
      EXPECT_EQ(slots[ps.first_slot].bit, bit);
      EXPECT_EQ(slots[ps.second_slot].bit, bit);
      EXPECT_EQ(slots[ps.first_slot].up_index + params.pair_offset,
                slots[ps.second_slot].up_index);
    }
    EXPECT_EQ(plan.bit_slots(bit).size(), 2 * plan.pairs_per_bit());
  }
}

TEST(DecodePlan, GreedyPreferenceMatchesFigure2) {
  // Wanted bit 1, group 1 (wants a large IPD): first packet earliest,
  // second latest.  Group 2 (wants small): the opposite.
  const auto params = small_params();
  const auto schedule = KeySchedule::create(params, 100, 5);
  const DecodePlan ones(schedule, Watermark::parse("1111"));
  for (const auto& slot : ones.slots()) {
    const bool expect_earliest = slot.group1 == slot.is_first;
    EXPECT_EQ(slot.prefer_earliest, expect_earliest);
  }
  const DecodePlan zeros(schedule, Watermark::parse("0000"));
  for (const auto& slot : zeros.slots()) {
    const bool expect_earliest = slot.group1 != slot.is_first;
    EXPECT_EQ(slot.prefer_earliest, expect_earliest);
  }
}

class AlgorithmPropertyTest : public testing::TestWithParam<int> {};

TEST_P(AlgorithmPropertyTest, GreedyLowerBoundsBruteForce) {
  const auto instance = make_small_instance(100 + GetParam(), 0.5,
                                            seconds(std::int64_t{1}));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  config.hamming_threshold = 1;
  config.cost_bound = 200'000'000;

  const auto brute =
      run_brute_force(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config);
  const DecodePlan plan(instance.marked.schedule, instance.marked.watermark);
  const auto greedy = run_greedy(plan, instance.marked.flow,
                                 instance.downstream, config);
  if (brute.matching_complete) {
    ASSERT_FALSE(brute.cost_bound_hit) << "instance too large for the test";
    EXPECT_LE(greedy.hamming, brute.hamming) << "greedy must lower-bound";
  }
}

TEST_P(AlgorithmPropertyTest, GreedyStarNeverBeatsBruteForceAndPlusIsValid) {
  const auto instance = make_small_instance(200 + GetParam(), 1.0,
                                            seconds(std::int64_t{1}));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  config.hamming_threshold = 0;  // force the final phases to run
  config.cost_bound = 200'000'000;

  const auto brute =
      run_brute_force(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config);
  const auto star =
      run_greedy_star(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config);
  const auto plus =
      run_greedy_plus(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config);
  ASSERT_EQ(star.matching_complete, brute.matching_complete);
  if (!brute.matching_complete) return;
  ASSERT_FALSE(brute.cost_bound_hit) << "instance too large for the test";
  // Brute Force is exact over order-consistent assignments; Greedy* and
  // Greedy+ decode only order-consistent selections, so neither can beat
  // it.
  EXPECT_GE(star.hamming, brute.hamming);
  EXPECT_GE(plus.hamming, star.hamming * 0u + brute.hamming);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmPropertyTest, testing::Range(0, 10));

TEST(SelectionState, RepairProducesOrderConsistentSelection) {
  for (int s = 0; s < 8; ++s) {
    const auto instance = make_small_instance(300 + s, 2.0,
                                              seconds(std::int64_t{2}));
    CostMeter cost;
    auto sets = CandidateSets::build(instance.marked.flow,
                                     instance.downstream,
                                     seconds(std::int64_t{2}),
                                     std::nullopt, cost);
    ASSERT_TRUE(sets.complete());
    ASSERT_TRUE(sets.prune(cost));
    const DecodePlan plan(instance.marked.schedule,
                          instance.marked.watermark);
    const auto down_ts = instance.downstream.timestamps();
    SelectionState state(plan, sets, down_ts, cost);
    // Greedy initialisation generally violates order; repair must fix it.
    state.repair_order();
    EXPECT_TRUE(state.order_consistent()) << "seed " << s;
  }
}

TEST(SelectionState, TryAdvanceKeepsOrderAndImproves) {
  const auto instance = make_small_instance(999, 2.0,
                                            seconds(std::int64_t{2}));
  CostMeter cost;
  auto sets = CandidateSets::build(instance.marked.flow, instance.downstream,
                                   seconds(std::int64_t{2}), std::nullopt,
                                   cost);
  ASSERT_TRUE(sets.complete());
  ASSERT_TRUE(sets.prune(cost));
  const DecodePlan plan(instance.marked.schedule, instance.marked.watermark);
  const auto down_ts = instance.downstream.timestamps();
  SelectionState state(plan, sets, down_ts, cost);
  state.repair_order();

  for (std::uint32_t bit = 0; bit < plan.bit_count(); ++bit) {
    if (state.bit_matches(bit)) continue;
    const DurationUs before = state.bit_diff(bit);
    for (const auto slot : plan.bit_slots(bit)) {
      const auto outcome = state.try_advance(slot, bit);
      if (outcome == SelectionState::MoveOutcome::kCommitted) {
        EXPECT_TRUE(state.order_consistent());
        const bool want_one = plan.target().bit(bit) == 1;
        if (want_one) {
          EXPECT_GT(state.bit_diff(bit), before);
        } else {
          EXPECT_LT(state.bit_diff(bit), before);
        }
      }
    }
  }
}

TEST(Correlator, DetectsIdenticalFlow) {
  const auto instance = make_small_instance(42, 0.0, 0);
  CorrelatorConfig config;
  config.max_delay = 0;
  config.hamming_threshold = 1;
  for (const auto algorithm :
       {Algorithm::kBruteForce, Algorithm::kGreedy, Algorithm::kGreedyPlus,
        Algorithm::kGreedyStar}) {
    const Correlator correlator(config, algorithm);
    const auto result =
        correlator.correlate(instance.marked, instance.marked.flow);
    EXPECT_TRUE(result.correlated) << to_string(algorithm);
    EXPECT_EQ(result.hamming, 0u) << to_string(algorithm);
    EXPECT_GT(result.cost, 0u) << to_string(algorithm);
  }
}

TEST(Correlator, RejectsDisjointTimeRanges) {
  const auto instance = make_small_instance(43, 0.0, 0);
  // A flow entirely in the far future: no matches possible.
  const Flow future = instance.marked.flow.shifted(seconds(std::int64_t{10'000}));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{2});
  config.hamming_threshold = 1;  // the 4-bit instance needs a tight bar
  for (const auto algorithm :
       {Algorithm::kBruteForce, Algorithm::kGreedyPlus,
        Algorithm::kGreedyStar}) {
    const Correlator correlator(config, algorithm);
    const auto result = correlator.correlate(instance.marked, future);
    EXPECT_FALSE(result.correlated) << to_string(algorithm);
    EXPECT_FALSE(result.matching_complete) << to_string(algorithm);
  }
  // Greedy never computes full matching but still cannot decode a close
  // watermark out of nothing.
  const Correlator greedy(config, Algorithm::kGreedy);
  EXPECT_FALSE(greedy.correlate(instance.marked, future).correlated);
}

TEST(Correlator, EndToEndUnderPerturbationAndChaff) {
  // The flagship scenario at small scale: perturbed + chaffed downstream
  // flow is recovered by the matching-based algorithms.
  int detected_plus = 0;
  int detected_star = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const auto instance = make_small_instance(700 + t, 1.0,
                                              seconds(std::int64_t{2}));
    CorrelatorConfig config;
    config.max_delay = seconds(std::int64_t{2});
    config.hamming_threshold = 1;
    detected_plus += Correlator(config, Algorithm::kGreedyPlus)
                         .correlate(instance.marked, instance.downstream)
                         .correlated;
    detected_star += Correlator(config, Algorithm::kGreedyStar)
                         .correlate(instance.marked, instance.downstream)
                         .correlated;
  }
  EXPECT_GE(detected_plus, kTrials - 2);
  EXPECT_GE(detected_star, kTrials - 2);
}

TEST(Correlator, GreedyStarRespectsCostBound) {
  const auto instance = make_small_instance(55, 3.0,
                                            seconds(std::int64_t{3}));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  config.hamming_threshold = 0;
  config.cost_bound = 500;  // absurdly tight
  const Correlator correlator(config, Algorithm::kGreedyStar);
  const auto result =
      correlator.correlate(instance.marked, instance.downstream);
  // The bound may stop the run anywhere, but cost accounting must show
  // we stopped promptly after it.
  EXPECT_LE(result.cost, 2'000u);
}

TEST(BruteForce, StopAtThresholdStopsEarly) {
  const auto instance = make_small_instance(77, 0.5,
                                            seconds(std::int64_t{1}));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  config.hamming_threshold = 4;  // every watermark qualifies
  config.cost_bound = 200'000'000;
  BruteForceOptions stop;
  stop.stop_at_threshold = true;
  const auto quick =
      run_brute_force(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config,
                      stop);
  const auto full =
      run_brute_force(instance.marked.schedule, instance.marked.watermark,
                      instance.marked.flow, instance.downstream, config);
  if (quick.matching_complete) {
    EXPECT_LE(quick.cost, full.cost);
    EXPECT_TRUE(quick.correlated);
  }
}

TEST(BruteForce, PruningDoesNotChangeTheOptimum) {
  for (int s = 0; s < 6; ++s) {
    const auto instance = make_small_instance(800 + s, 0.7,
                                              seconds(std::int64_t{1}));
    CorrelatorConfig config;
    config.max_delay = seconds(std::int64_t{1});
    config.cost_bound = 500'000'000;
    BruteForceOptions no_prune;
    no_prune.prune = false;
    const auto pruned =
        run_brute_force(instance.marked.schedule, instance.marked.watermark,
                        instance.marked.flow, instance.downstream, config);
    const auto raw =
        run_brute_force(instance.marked.schedule, instance.marked.watermark,
                        instance.marked.flow, instance.downstream, config,
                        no_prune);
    ASSERT_FALSE(raw.cost_bound_hit) << "instance too large for the test";
    EXPECT_EQ(pruned.matching_complete, raw.matching_complete);
    if (raw.matching_complete) {
      EXPECT_EQ(pruned.hamming, raw.hamming) << "seed " << s;
      EXPECT_LE(pruned.cost, raw.cost) << "pruning should not cost more";
    }
  }
}

/// Field-by-field equality of two results — the golden interleaving tests
/// pin every observable, not just the verdict.
void expect_identical_result(const CorrelationResult& got,
                             const CorrelationResult& want,
                             const std::string& label) {
  EXPECT_EQ(got.algorithm, want.algorithm) << label;
  EXPECT_EQ(got.correlated, want.correlated) << label;
  EXPECT_EQ(got.hamming, want.hamming) << label;
  EXPECT_EQ(got.best_watermark, want.best_watermark) << label;
  EXPECT_EQ(got.cost, want.cost) << label;
  EXPECT_EQ(got.matching_complete, want.matching_complete) << label;
  EXPECT_EQ(got.cost_bound_hit, want.cost_bound_hit) << label;
  EXPECT_EQ(got.interrupted, want.interrupted) << label;
  EXPECT_EQ(got.stop_reason, want.stop_reason) << label;
  EXPECT_EQ(got.degraded, want.degraded) << label;
}

// Golden interleaving test: the same downstream flow replayed under three
// arrival-order interleavings — one packet per ingest(), shared-buffer
// chunked ingest_appended(), and one bulk append — must produce a
// CorrelationResult identical to the batch Correlator in every field,
// including the paper's cost metric.  Early exits are disabled so even
// pairs the finality proofs would reject take the offline path.
TEST(OnlineCorrelator, GoldenInterleavingsMatchBatch) {
  OnlineOptions no_exit;
  no_exit.early_exit = false;
  for (const Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyPlus, Algorithm::kGreedyStar,
        Algorithm::kBruteForce}) {
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      const SmallInstance instance =
          make_small_instance(seed, 2.0, seconds(std::int64_t{1}));
      CorrelatorConfig config;
      config.max_delay = seconds(std::int64_t{2});
      const CorrelationResult batch = Correlator(config, algorithm)
                                          .correlate(instance.marked,
                                                     instance.downstream);
      const std::string label = "algorithm " + to_string(algorithm) +
                                ", seed " + std::to_string(seed);

      // Interleaving 1: standalone, one packet per ingest() call.
      OnlineCorrelator per_packet(instance.marked, config, algorithm,
                                  no_exit);
      for (const PacketRecord& packet : instance.downstream.packets()) {
        per_packet.ingest(packet);
      }
      per_packet.finish();
      expect_identical_result(per_packet.result(), batch,
                              label + ", per-packet");

      // Interleaving 2: shared buffer, ingest_appended() every 3 packets
      // (the streaming engine's batched cadence).
      const auto upstream =
          std::make_shared<OnlineUpstream>(instance.marked);
      const auto chunk_buffer = std::make_shared<AppendOnlyFlow>();
      OnlineCorrelator chunked(upstream, chunk_buffer, config, algorithm,
                               no_exit);
      std::size_t pending = 0;
      for (const PacketRecord& packet : instance.downstream.packets()) {
        chunk_buffer->append(packet);
        if (++pending == 3) {
          chunked.ingest_appended();
          pending = 0;
        }
      }
      chunked.ingest_appended();
      chunked.finish();
      expect_identical_result(chunked.result(), batch, label + ", chunked");

      // Interleaving 3: the whole capture lands in one append burst.
      const auto bulk_buffer = std::make_shared<AppendOnlyFlow>();
      OnlineCorrelator bulk(upstream, bulk_buffer, config, algorithm,
                            no_exit);
      for (const PacketRecord& packet : instance.downstream.packets()) {
        bulk_buffer->append(packet);
      }
      bulk.ingest_appended();
      bulk.finish();
      expect_identical_result(bulk.result(), batch, label + ", bulk");
    }
  }
}

// With early exits enabled the online verdict must still agree with batch
// on the decision, and a caller that stops feeding once ingest() returns
// false gets the same verdict as one that replays the full stream.
TEST(OnlineCorrelator, EarlyExitVerdictAgreesWithBatch) {
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    // Mismatched pair: watermarked flow from one instance, downstream from
    // another — the typical candidate for a finality-proof rejection.
    const SmallInstance a =
        make_small_instance(seed, 2.0, seconds(std::int64_t{1}));
    const SmallInstance b =
        make_small_instance(seed + 100, 2.0, seconds(std::int64_t{1}));
    CorrelatorConfig config;
    config.max_delay = seconds(std::int64_t{2});
    const Algorithm algorithm = Algorithm::kGreedyPlus;
    const CorrelationResult batch =
        Correlator(config, algorithm).correlate(a.marked, b.downstream);

    OnlineCorrelator online(a.marked, config, algorithm);
    bool undecided = true;
    std::size_t fed = 0;
    for (const PacketRecord& packet : b.downstream.packets()) {
      if (!undecided) break;  // stop-feeding-once-decided interleaving
      undecided = online.ingest(packet);
      ++fed;
    }
    online.finish();
    const CorrelationResult result = online.result();
    EXPECT_EQ(result.correlated, batch.correlated) << "seed " << seed;
    if (online.early_rejected()) {
      // Early rejection freezes the cost at the packets actually seen.
      EXPECT_FALSE(result.correlated);
      EXPECT_EQ(result.cost, fed);
      EXPECT_FALSE(result.matching_complete);
    } else {
      expect_identical_result(result, batch,
                              "undecided pair, seed " + std::to_string(seed));
    }
  }
}

TEST(AlgorithmNames, ToString) {
  EXPECT_EQ(to_string(Algorithm::kBruteForce), "BruteForce");
  EXPECT_EQ(to_string(Algorithm::kGreedy), "Greedy");
  EXPECT_EQ(to_string(Algorithm::kGreedyPlus), "Greedy+");
  EXPECT_EQ(to_string(Algorithm::kGreedyStar), "Greedy*");
}

}  // namespace
}  // namespace sscor
