// ThreadSanitizer smoke test for the pooled experiment harness.
//
// Built in every configuration (it doubles as a plain stress test); its
// real purpose is the SSCOR_SANITIZE=thread build, where it must report
// zero races while evaluate_point and run_sweep drive the shared pool with
// 8 threads.  tools/run_checks.sh builds that configuration and runs this
// binary; see README "Testing" for the manual invocation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sscor/experiment/dataset.hpp"
#include "sscor/experiment/evaluation.hpp"
#include "sscor/experiment/sweep.hpp"
#include "sscor/util/parallel.hpp"

namespace sscor::experiment {
namespace {

ExperimentConfig smoke_config() {
  ExperimentConfig config;
  config.flows = 4;
  config.packets_per_flow = 400;
  config.fp_pairs = 6;
  config.threads = 8;
  return config;
}

TEST(TsanSmoke, EvaluatePointWithEightThreads) {
  const auto config = smoke_config();
  const Dataset dataset = Dataset::build(config);
  const auto detectors = paper_detectors(config, seconds(std::int64_t{2}));
  EvaluationRequest request;
  request.max_delay = seconds(std::int64_t{2});
  request.chaff_rate = 1.0;
  const auto metrics = evaluate_point(dataset, detectors, request);
  ASSERT_EQ(metrics.size(), detectors.size());
  for (const auto& m : metrics) {
    EXPECT_GE(m.detection_rate, 0.0);
    EXPECT_LE(m.detection_rate, 1.0);
  }
}

TEST(TsanSmoke, PooledSweepWithEightThreads) {
  SweepSpec spec;
  spec.metric = Metric::kDetectionRate;
  spec.axis = SweepAxis::kChaffRate;
  spec.fixed_delay = seconds(std::int64_t{1});
  spec.chaff_rates = {0.0, 1.0};
  const TextTable table = run_sweep(smoke_config(), spec);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TsanSmoke, ConcurrentSubmittersShareThePool) {
  std::atomic<std::size_t> total{0};
  std::thread other([&] {
    parallel_for(
        2000, [&](std::size_t) { total.fetch_add(1); }, 8);
  });
  parallel_for(
      2000, [&](std::size_t) { total.fetch_add(1); }, 8);
  other.join();
  EXPECT_EQ(total.load(), 4000u);
}

}  // namespace
}  // namespace sscor::experiment
