// Unit and property tests for sscor/matching: the matching-window scan,
// binary-search windows, size-constrained candidate sets, and pruning.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "sscor/matching/candidate_sets.hpp"
#include "sscor/matching/cost_meter.hpp"
#include "sscor/matching/match_windows.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/rng.hpp"

namespace sscor {
namespace {

/// Naive O(n*m) reference for matching windows.
std::vector<MatchWindow> reference_windows(std::span<const TimeUs> up,
                                           std::span<const TimeUs> down,
                                           DurationUs delta) {
  std::vector<MatchWindow> out;
  for (const TimeUs t : up) {
    MatchWindow w{static_cast<std::uint32_t>(down.size()), 0};
    bool any = false;
    for (std::uint32_t j = 0; j < down.size(); ++j) {
      if (down[j] >= t && down[j] - t <= delta) {
        if (!any) w.lo = j;
        w.hi = j + 1;
        any = true;
      }
    }
    if (!any) {
      // Normalise the empty window the same way the scan does: both bounds
      // at the first element past the window.
      std::uint32_t lo = 0;
      while (lo < down.size() && down[lo] < t) ++lo;
      w = MatchWindow{lo, lo};
    }
    out.push_back(w);
  }
  return out;
}

TEST(CostMeter, CountsAndBounds) {
  CostMeter unbounded;
  unbounded.count(5);
  EXPECT_EQ(unbounded.accesses(), 5u);
  EXPECT_FALSE(unbounded.exhausted());

  CostMeter bounded(10);
  bounded.count(9);
  EXPECT_FALSE(bounded.exhausted());
  bounded.count();
  EXPECT_TRUE(bounded.exhausted());
}

TEST(MatchWindows, SimpleCases) {
  const std::vector<TimeUs> up{100, 200, 300};
  const std::vector<TimeUs> down{90, 100, 150, 210, 290, 305};
  CostMeter cost;
  const auto windows = scan_match_windows(up, down, 50, cost);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (MatchWindow{1, 3}));  // 100, 150
  EXPECT_EQ(windows[1], (MatchWindow{3, 4}));  // 210
  EXPECT_EQ(windows[2], (MatchWindow{5, 6}));  // 305 (290 < 300 excluded)
  EXPECT_GT(cost.accesses(), 0u);
}

TEST(MatchWindows, ZeroDelayExactMatch) {
  const std::vector<TimeUs> up{100, 200};
  const std::vector<TimeUs> down{100, 150, 200};
  CostMeter cost;
  const auto windows = scan_match_windows(up, down, 0, cost);
  EXPECT_EQ(windows[0], (MatchWindow{0, 1}));
  EXPECT_EQ(windows[1], (MatchWindow{2, 3}));
}

class MatchWindowPropertyTest : public testing::TestWithParam<int> {};

TEST_P(MatchWindowPropertyTest, ScanMatchesNaiveReference) {
  Rng rng(10'000 + GetParam());
  // Random flows with duplicates and bursts to stress the pointers.
  auto random_flow = [&](std::size_t count) {
    std::vector<TimeUs> ts;
    TimeUs t = 0;
    for (std::size_t i = 0; i < count; ++i) {
      t += rng.uniform_i64(0, 1000);  // zero gaps allowed
      ts.push_back(t);
    }
    return ts;
  };
  const auto up = random_flow(60);
  const auto down = random_flow(120);
  const DurationUs delta = rng.uniform_i64(0, 2000);

  CostMeter cost;
  const auto scanned = scan_match_windows(up, down, delta, cost);
  const auto expected = reference_windows(up, down, delta);
  ASSERT_EQ(scanned.size(), expected.size());
  for (std::size_t i = 0; i < scanned.size(); ++i) {
    if (expected[i].empty()) {
      EXPECT_TRUE(scanned[i].empty()) << "window " << i;
    } else {
      EXPECT_EQ(scanned[i], expected[i]) << "window " << i;
    }
  }
  // The scan touches each downstream packet at most twice per pointer plus
  // one re-probe per upstream packet.
  EXPECT_LE(cost.accesses(), 2 * down.size() + 2 * up.size());

  // The paper's own scan heuristic produces identical windows within the
  // same O(m) access bound.
  CostMeter paper_cost;
  const auto paper =
      scan_match_windows_paper_heuristic(up, down, delta, paper_cost);
  ASSERT_EQ(paper.size(), expected.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    if (expected[i].empty()) {
      EXPECT_TRUE(paper[i].empty()) << "paper-heuristic window " << i;
    } else {
      EXPECT_EQ(paper[i], expected[i]) << "paper-heuristic window " << i;
    }
  }
  EXPECT_LE(paper_cost.accesses(), 2 * down.size() + 3 * up.size());

  // Binary-search windows agree with the scan.
  for (std::size_t i = 0; i < up.size(); ++i) {
    CostMeter bs_cost;
    const auto window = find_match_window(up[i], down, delta, bs_cost);
    if (expected[i].empty()) {
      EXPECT_TRUE(window.empty());
    } else {
      EXPECT_EQ(window, expected[i]);
    }
    EXPECT_LE(bs_cost.accesses(), 2 * (std::bit_width(down.size()) + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchWindowPropertyTest,
                         testing::Range(0, 16));

Flow flow_of(std::vector<TimeUs> ts) {
  return Flow::from_timestamps(ts);
}

TEST(CandidateSets, BuildWithoutSizeConstraint) {
  const Flow up = flow_of({100, 200});
  const Flow down = flow_of({100, 150, 210, 260});
  CostMeter cost;
  const auto sets =
      CandidateSets::build(up, down, 60, std::nullopt, cost);
  ASSERT_EQ(sets.upstream_size(), 2u);
  EXPECT_EQ(std::vector<std::uint32_t>(sets.set(0).begin(), sets.set(0).end()),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(std::vector<std::uint32_t>(sets.set(1).begin(), sets.set(1).end()),
            (std::vector<std::uint32_t>{2, 3}));
  EXPECT_TRUE(sets.complete());
}

TEST(CandidateSets, SizeConstraintFilters) {
  Flow up({PacketRecord{100, 20, false}});       // quantizes to 32
  Flow down({PacketRecord{100, 31, false},        // 32: match
             PacketRecord{110, 33, false},        // 48: no match
             PacketRecord{120, 32, false}});      // 32: match
  CostMeter cost;
  const auto sets = CandidateSets::build(up, down, 60,
                                         SizeConstraint{16}, cost);
  EXPECT_EQ(std::vector<std::uint32_t>(sets.set(0).begin(), sets.set(0).end()),
            (std::vector<std::uint32_t>{0, 2}));
}

TEST(CandidateSets, IncompleteWhenNoMatch) {
  const Flow up = flow_of({100, 5'000});
  const Flow down = flow_of({100});
  CostMeter cost;
  const auto sets =
      CandidateSets::build(up, down, 60, std::nullopt, cost);
  EXPECT_FALSE(sets.complete());
}

TEST(CandidateSets, PruneEnforcesStrictChains) {
  // Paper's example: M(p1) = M(p2) = {1, 2}; pruning must remove 2 from
  // M(p1)'s options? No — remove 1 as a *choice for p2* and 2 as a choice
  // for p1 is about firsts/lasts: after pruning, minima strictly increase
  // and maxima strictly decrease backwards.
  const Flow up = flow_of({100, 105});
  const Flow down = flow_of({110, 120});
  CostMeter cost;
  auto sets = CandidateSets::build(up, down, 100, std::nullopt, cost);
  ASSERT_TRUE(sets.complete());
  ASSERT_TRUE(sets.prune(cost));
  EXPECT_EQ(std::vector<std::uint32_t>(sets.set(0).begin(), sets.set(0).end()),
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(std::vector<std::uint32_t>(sets.set(1).begin(), sets.set(1).end()),
            (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(sets.pruned());
}

TEST(CandidateSets, PruneDetectsInfeasibility) {
  // Three upstream packets but only two candidates.
  const Flow up = flow_of({100, 101, 102});
  const Flow down = flow_of({110, 120});
  CostMeter cost;
  auto sets = CandidateSets::build(up, down, 100, std::nullopt, cost);
  ASSERT_TRUE(sets.complete());
  EXPECT_FALSE(sets.prune(cost));
}

class PrunePropertyTest : public testing::TestWithParam<int> {};

TEST_P(PrunePropertyTest, PruningPreservesCompleteAssignments) {
  Rng rng(20'000 + GetParam());
  const traffic::InteractiveSessionModel model;
  const Flow up = model.generate(40, 0, 30'000 + GetParam());
  const traffic::UniformPerturber perturber(seconds(std::int64_t{2}),
                                            40'000 + GetParam());
  const traffic::PoissonChaffInjector chaff(1.0, 50'000 + GetParam());
  const Flow down = chaff.apply(perturber.apply(up));

  CostMeter cost;
  auto sets = CandidateSets::build(up, down, seconds(std::int64_t{2}),
                                   std::nullopt, cost);
  ASSERT_TRUE(sets.complete());
  auto pruned = sets;
  ASSERT_TRUE(pruned.prune(cost));

  // 1. Pruned sets are subsets of the originals.
  for (std::size_t i = 0; i < sets.upstream_size(); ++i) {
    for (const auto c : pruned.set(i)) {
      EXPECT_TRUE(std::find(sets.set(i).begin(), sets.set(i).end(), c) !=
                  sets.set(i).end());
    }
  }
  // 2. Minima strictly increase; maxima strictly increase as well.
  for (std::size_t i = 1; i < pruned.upstream_size(); ++i) {
    EXPECT_LT(pruned.set(i - 1).front(), pruned.set(i).front());
    EXPECT_LT(pruned.set(i - 1).back(), pruned.set(i).back());
  }
  // 3. The all-minima and all-maxima assignments are valid complete
  //    order-preserving assignments (feasibility witness).
  // 4. The true correspondence (packet k of `up` -> position of its copy
  //    in `down`) survives pruning.
  std::vector<std::uint32_t> truth;
  for (std::uint32_t j = 0; j < down.size(); ++j) {
    if (!down.packet(j).is_chaff) truth.push_back(j);
  }
  ASSERT_EQ(truth.size(), up.size());
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_TRUE(std::find(pruned.set(i).begin(), pruned.set(i).end(),
                          truth[i]) != pruned.set(i).end())
        << "true match pruned away for packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunePropertyTest, testing::Range(0, 12));

}  // namespace
}  // namespace sscor
