// Unit tests for sscor/flow: the flow model, clock adjustment, capture
// synthesis, and flow extraction.

#include <gtest/gtest.h>

#include <sstream>

#include "sscor/flow/clock_model.hpp"
#include "sscor/flow/flow.hpp"
#include "sscor/flow/flow_extractor.hpp"
#include "sscor/flow/pcap_synth.hpp"
#include "sscor/net/headers.hpp"
#include "sscor/pcap/pcap_reader.hpp"
#include "sscor/util/error.hpp"

namespace sscor {
namespace {

Flow flow_of(std::initializer_list<TimeUs> timestamps) {
  return Flow::from_timestamps(std::vector<TimeUs>(timestamps));
}

TEST(Flow, SortsOnConstruction) {
  Flow flow({PacketRecord{30, 1, false}, PacketRecord{10, 2, false},
             PacketRecord{20, 3, false}},
            "f");
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.timestamp(0), 10);
  EXPECT_EQ(flow.timestamp(1), 20);
  EXPECT_EQ(flow.timestamp(2), 30);
  EXPECT_EQ(flow.id(), "f");
}

TEST(Flow, StableSortKeepsEqualTimestampOrder) {
  Flow flow({PacketRecord{10, 1, false}, PacketRecord{10, 2, false}});
  EXPECT_EQ(flow.packet(0).size, 1u);
  EXPECT_EQ(flow.packet(1).size, 2u);
}

TEST(Flow, BasicAccessors) {
  const Flow flow = flow_of({100, 300, 900});
  EXPECT_EQ(flow.start_time(), 100);
  EXPECT_EQ(flow.end_time(), 900);
  EXPECT_EQ(flow.duration(), 800);
  EXPECT_EQ(flow.ipd(0), 200);
  EXPECT_EQ(flow.ipd(1), 600);
  EXPECT_THROW(flow.ipd(2), InvalidArgument);
  EXPECT_EQ(flow.timestamps(), (std::vector<TimeUs>{100, 300, 900}));
}

TEST(Flow, EmptyFlowGuards) {
  const Flow empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.duration(), 0);
  EXPECT_THROW(empty.start_time(), InvalidArgument);
  EXPECT_THROW(empty.end_time(), InvalidArgument);
}

TEST(Flow, Stats) {
  const Flow flow = flow_of({0, seconds(std::int64_t{1}),
                             seconds(std::int64_t{2}),
                             seconds(std::int64_t{4})});
  const FlowStats stats = flow.stats();
  EXPECT_EQ(stats.packets, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_rate_pps, 1.0);
  EXPECT_NEAR(stats.mean_ipd_seconds, 4.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.median_ipd_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_ipd_seconds, 2.0);
}

TEST(Flow, ShiftedAndAppend) {
  Flow flow = flow_of({10, 20});
  const Flow shifted = flow.shifted(5);
  EXPECT_EQ(shifted.timestamp(0), 15);
  EXPECT_EQ(shifted.timestamp(1), 25);
  flow.append(PacketRecord{30, 0, false});
  EXPECT_EQ(flow.size(), 3u);
  EXPECT_THROW(flow.append(PacketRecord{5, 0, false}), InvalidArgument);
}

TEST(Flow, MergePreservesOrderAndChaffFlags) {
  Flow a({PacketRecord{10, 1, false}, PacketRecord{30, 1, false}});
  Flow b({PacketRecord{20, 2, true}});
  const Flow merged = merge_flows(a, b, "m");
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.timestamp(1), 20);
  EXPECT_TRUE(merged.packet(1).is_chaff);
  EXPECT_EQ(merged.chaff_count(), 1u);
  EXPECT_EQ(merged.id(), "m");
}

TEST(ClockModel, IdentityIsNoOp) {
  const auto clock = ClockModel::identity();
  EXPECT_EQ(clock.to_reference(123456), 123456);
  EXPECT_EQ(clock.to_remote(123456), 123456);
}

TEST(ClockModel, OffsetOnly) {
  const ClockModel clock(millis(250), 0.0);
  EXPECT_EQ(clock.to_reference(millis(1000)), millis(750));
  EXPECT_EQ(clock.to_remote(millis(750)), millis(1000));
}

TEST(ClockModel, DriftRoundTrip) {
  const ClockModel clock(seconds(std::int64_t{2}), 50.0, 0);
  for (const TimeUs t : {TimeUs{0}, seconds(std::int64_t{100}),
                         seconds(std::int64_t{100'000})}) {
    const TimeUs remote = clock.to_remote(t);
    EXPECT_NEAR(static_cast<double>(clock.to_reference(remote)),
                static_cast<double>(t), 1.0);
  }
}

TEST(ClockModel, AdjustFlow) {
  const ClockModel clock(millis(100), 0.0);
  const Flow flow = flow_of({millis(100), millis(300)});
  const Flow adjusted = clock.adjust(flow);
  EXPECT_EQ(adjusted.timestamp(0), 0);
  EXPECT_EQ(adjusted.timestamp(1), millis(200));
}

TEST(Synthesis, CaptureRoundTripThroughExtractor) {
  // Two flows with distinct five-tuples; sizes >= 1 so the payload-only
  // extractor keeps them.
  Flow a({PacketRecord{1'000, 32, false}, PacketRecord{3'000, 48, false},
          PacketRecord{5'000, 32, false}});
  Flow b({PacketRecord{2'000, 16, false}, PacketRecord{4'000, 16, false}});
  const net::FiveTuple ta{net::Ipv4Address::parse("10.0.0.1"),
                          net::Ipv4Address::parse("10.0.0.2"), 1111, 22,
                          net::IpProtocol::kTcp};
  const net::FiveTuple tb{net::Ipv4Address::parse("10.0.0.3"),
                          net::Ipv4Address::parse("10.0.0.4"), 2222, 22,
                          net::IpProtocol::kTcp};

  const auto records =
      synthesize_capture({SynthesisInput{ta, &a}, SynthesisInput{tb, &b}});
  ASSERT_EQ(records.size(), 5u);
  // Interleaved by timestamp.
  EXPECT_EQ(records[0].timestamp, 1'000);
  EXPECT_EQ(records[1].timestamp, 2'000);

  const auto flows = extract_flows(records, pcap::LinkType::kRawIp);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].tuple, ta);
  EXPECT_EQ(flows[0].flow.size(), 3u);
  EXPECT_EQ(flows[0].flow.timestamp(1), 3'000);
  EXPECT_EQ(flows[0].flow.packet(1).size, 48u);
  EXPECT_EQ(flows[1].tuple, tb);
  EXPECT_EQ(flows[1].flow.size(), 2u);
}

TEST(Synthesis, WritesValidPcapFile) {
  Flow a({PacketRecord{1'000, 32, false}, PacketRecord{2'000, 32, false}});
  const net::FiveTuple tuple{net::Ipv4Address::parse("10.0.0.1"),
                             net::Ipv4Address::parse("10.0.0.2"), 1111, 22,
                             net::IpProtocol::kTcp};
  const std::string path = testing::TempDir() + "/sscor_synth_test.pcap";
  write_capture_file(path, {SynthesisInput{tuple, &a}});

  const auto flows = extract_flows_from_file(path);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].flow.size(), 2u);
  // The packets inside must carry valid checksums.
  const auto records = pcap::read_pcap_file(path);
  for (const auto& record : records) {
    EXPECT_TRUE(net::verify_ipv4_checksum(record.data));
    EXPECT_TRUE(net::verify_tcp_checksum(record.data));
  }
}

TEST(Extractor, FiltersControlAndEmptyPackets) {
  const net::FiveTuple tuple{net::Ipv4Address::parse("10.0.0.1"),
                             net::Ipv4Address::parse("10.0.0.2"), 1111, 22,
                             net::IpProtocol::kTcp};
  std::vector<pcap::Record> records;
  auto push = [&](TimeUs ts, std::uint8_t flags, std::size_t payload) {
    pcap::Record r;
    r.timestamp = ts;
    r.data = net::encode_tcp_packet(tuple, 1, 1, flags, payload);
    r.original_length = static_cast<std::uint32_t>(r.data.size());
    records.push_back(std::move(r));
  };
  push(1, net::kTcpSyn, 0);             // control: skipped
  push(2, net::kTcpAck, 0);             // empty ACK: skipped
  push(3, net::kTcpAck | net::kTcpPsh, 8);
  push(4, net::kTcpAck | net::kTcpPsh, 8);
  push(5, net::kTcpFin | net::kTcpAck, 0);  // control: skipped

  const auto flows = extract_flows(records, pcap::LinkType::kRawIp);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].flow.size(), 2u);

  ExtractorOptions keep_all;
  keep_all.payload_only = false;
  keep_all.skip_control = false;
  keep_all.min_packets = 1;
  const auto all = extract_flows(records, pcap::LinkType::kRawIp, keep_all);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].flow.size(), 5u);
}

TEST(Extractor, MinPacketsDropsTinyFlows) {
  const net::FiveTuple tuple{net::Ipv4Address::parse("10.0.0.1"),
                             net::Ipv4Address::parse("10.0.0.2"), 1111, 22,
                             net::IpProtocol::kTcp};
  pcap::Record r;
  r.timestamp = 1;
  r.data = net::encode_tcp_packet(tuple, 1, 1, net::kTcpPsh, 4);
  const auto flows = extract_flows({r}, pcap::LinkType::kRawIp);
  EXPECT_TRUE(flows.empty());  // default min_packets = 2
}

TEST(Extractor, SkipsNonIpv4Records) {
  pcap::Record garbage;
  garbage.timestamp = 1;
  garbage.data = {0x00, 0x01, 0x02};
  EXPECT_TRUE(extract_flows({garbage}, pcap::LinkType::kRawIp).empty());
  EXPECT_TRUE(extract_flows({garbage}, pcap::LinkType::kEthernet).empty());
}

}  // namespace
}  // namespace sscor
