// Unit tests for sscor/util: time, rng, stats, table, thread pool, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/rng.hpp"
#include "sscor/util/stats.hpp"
#include "sscor/util/table.hpp"
#include "sscor/util/thread_pool.hpp"
#include "sscor/util/time.hpp"

namespace sscor {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(std::int64_t{3}), 3'000'000);
  EXPECT_EQ(millis(250), 250'000);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(1'500), 1.5);
  EXPECT_EQ(seconds(0.0005), 500);
  EXPECT_EQ(seconds(-0.0005), -500);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(std::int64_t{2})), "2.000s");
  EXPECT_EQ(format_duration(millis(600)), "600.000ms");
  EXPECT_EQ(format_duration(42), "42us");
  EXPECT_EQ(format_duration(-millis(5)), "-5.000ms");
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b();
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
    const auto v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.uniform_u64(kBuckets)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 500);
  }
}

TEST(Rng, UniformDuration) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_duration(0), 0);
  for (int i = 0; i < 1000; ++i) {
    const auto d = rng.uniform_duration(seconds(std::int64_t{2}));
    EXPECT_GE(d, 0);
    EXPECT_LE(d, seconds(std::int64_t{2}));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(rng.exponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(rng.normal(5.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ParetoSupport) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20'000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(100.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  for (const auto v : sample) {
    EXPECT_LT(v, 100u);
  }
  EXPECT_EQ(rng.sample_without_replacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(31);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += f1() == f2();
  }
  EXPECT_LT(equal, 4);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, Merge) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(0, 1);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Quantile) {
  std::vector<double> values{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile(values, 1.5), InvalidArgument);
}

TEST(Stats, Histogram) {
  Histogram h(0.0, 10.0, 5);
  for (double v = 0.5; v < 10; v += 1.0) h.add(v);
  h.add(-100.0);  // clamps into the first bucket
  h.add(100.0);   // clamps into the last bucket
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(4), 3u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
  EXPECT_NEAR(h.fraction(1), 2.0 / 12.0, 1e-12);
}

TEST(Stats, WilsonInterval) {
  // Hand-checked values for 8/10 at 95%.
  const auto ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.low, 0.49, 0.01);
  EXPECT_NEAR(ci.high, 0.943, 0.01);
  // Degenerate and boundary cases.
  const auto none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_DOUBLE_EQ(none.high, 1.0);
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  EXPECT_LT(zero.high, 0.12);
  const auto all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_GT(all.low, 0.88);
  EXPECT_THROW(wilson_interval(5, 3), InvalidArgument);
}

TEST(Parallel, CoversEveryIndexOnce) {
  for (const unsigned threads : {0u, 1u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(500);
    parallel_for(
        hits.size(),
        [&](std::size_t i) { hits[i].fetch_add(1); },
        threads);
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
  // Zero items is a no-op.
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

// Regression: a throwing item must stop sibling workers promptly — before
// the fix, the worker that caught the exception returned while the others
// kept draining every remaining item.  The thrower's whole first chunk is
// abandoned, so at least chunk-many items can never run.
TEST(Parallel, ErrorStopsSiblingsPromptly) {
  constexpr std::size_t kCount = 20'000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          kCount,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("first item fails");
            executed.fetch_add(1, std::memory_order_relaxed);
          },
          4),
      std::runtime_error);
  EXPECT_LT(executed.load(), kCount - 1)
      << "all items after the throwing one still ran";
}

namespace {

// Linux: current thread count of this process, or 0 if unreadable.
std::size_t os_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(
          std::stoul(line.substr(sizeof("Threads:") - 1)));
    }
  }
  return 0;
}

}  // namespace

TEST(ThreadPool, ZeroCountIsNoOp) {
  ThreadPool::shared().for_each(
      0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, CountSmallerThanThreads) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock) {
  std::atomic<std::size_t> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(
            1000,
            [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); },
            4);
      },
      4);
  EXPECT_EQ(total.load(), 8u * 1000u);
}

TEST(ThreadPool, ExceptionFromArbitraryItemPropagatesExactlyOnce) {
  // Many items throw; exactly one exception must reach the caller and the
  // pool must stay usable afterwards.
  int caught = 0;
  try {
    parallel_for(
        1000, [](std::size_t) { throw std::runtime_error("every item"); }, 4);
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  std::atomic<std::size_t> after{0};
  parallel_for(
      100, [&](std::size_t) { after.fetch_add(1); }, 4);
  EXPECT_EQ(after.load(), 100u);
}

TEST(ThreadPool, SurvivesManySmallDispatchesWithoutThreadGrowth) {
  std::atomic<std::size_t> total{0};
  // Warm the shared pool so its workers exist before the baseline count.
  parallel_for(64, [&](std::size_t) { total.fetch_add(1); }, 4);
  const std::size_t before = os_thread_count();
  for (int round = 0; round < 10'000; ++round) {
    parallel_for(4, [&](std::size_t) { total.fetch_add(1); }, 4);
  }
  const std::size_t after = os_thread_count();
  EXPECT_EQ(total.load(), 64u + 10'000u * 4u);
  if (before != 0) {
    EXPECT_EQ(after, before) << "pool grew threads across dispatches";
  }
}

TEST(ThreadPool, ConcurrentTopLevelSubmissionsSerialise) {
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        parallel_for(
            200, [&](std::size_t) { total.fetch_add(1); }, 4);
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 200u);
}

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  metrics::Counter c;
  parallel_for(
      1000, [&](std::size_t) { c.add(2); }, 4);
  EXPECT_EQ(c.value(), 2000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryTimersAndSnapshot) {
  metrics::reset();
  metrics::counter("test.events").add(7);
  { const metrics::ScopedTimer timer("test.phase"); }
  { const metrics::ScopedTimer timer("test.phase"); }
  const auto snap = metrics::snapshot();

  bool found_counter = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.events") {
      found_counter = true;
      EXPECT_EQ(c.value, 7u);
    }
  }
  EXPECT_TRUE(found_counter);

  bool found_timer = false;
  for (const auto& t : snap.timers) {
    if (t.name == "test.phase") {
      found_timer = true;
      EXPECT_EQ(t.count, 2u);
      EXPECT_GE(t.seconds, 0.0);
    }
  }
  EXPECT_TRUE(found_timer);

  const std::string table = snap.to_table().to_string();
  EXPECT_NE(table.find("test.events"), std::string::npos);
  EXPECT_NE(table.find("test.phase"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"test.events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);

  metrics::reset();
  EXPECT_EQ(metrics::counter("test.events").value(), 0u);
}

TEST(Metrics, GaugeSetAddAndSnapshot) {
  metrics::reset();
  metrics::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);

  metrics::gauge("test.level").set(42);
  metrics::gauge("test.depth").add(-5);
  const auto snap = metrics::snapshot();
  bool found = false;
  for (const auto& entry : snap.gauges) {
    if (entry.name == "test.level") {
      found = true;
      EXPECT_EQ(entry.value, 42);
    }
  }
  EXPECT_TRUE(found);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.level\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.depth\": -5"), std::string::npos);
  EXPECT_NE(snap.to_table().to_string().find("test.level"),
            std::string::npos);
  metrics::reset();
  EXPECT_EQ(metrics::gauge("test.level").value(), 0);
}

TEST(Metrics, HistogramRecordConcurrentWithSnapshot) {
  // The stats server snapshots the registry while workers keep recording.
  // Mid-flight snapshots may be mutually torn between fields (documented),
  // but each field must be exact: never exceeding the true total, and the
  // final snapshot must account for every write (no lost updates).
  metrics::reset();
  constexpr std::uint64_t kPerThread = 20'000;
  constexpr unsigned kWriters = 4;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load()) {
      const auto snap = metrics::snapshot();
      for (const auto& h : snap.histograms) {
        if (h.name != "test.concurrent") continue;
        std::uint64_t bucket_sum = 0;
        for (const auto b : h.data.buckets) bucket_sum += b;
        EXPECT_LE(bucket_sum, kPerThread * kWriters);
        EXPECT_LE(h.data.count, kPerThread * kWriters);
      }
    }
  });
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto& hist = metrics::histogram("test.concurrent");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(w * 13 + i % 7);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  snapshotter.join();

  const auto snap = metrics::snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test.concurrent") {
      found = true;
      EXPECT_EQ(h.data.count, kPerThread * kWriters);
      std::uint64_t bucket_sum = 0;
      for (const auto b : h.data.buckets) bucket_sum += b;
      EXPECT_EQ(bucket_sum, kPerThread * kWriters);
    }
  }
  EXPECT_TRUE(found);
  metrics::reset();
}

TEST(Table, RenderAndCsv) {
  TextTable table({"x", "value"});
  table.add_row({"1", "alpha"});
  table.add_row({"2", "beta,with comma"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| x | value"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"beta,with comma\""), std::string::npos);
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(TextTable::cell(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::cell(std::int64_t{-42}), "-42");
}

TEST(Error, RequireThrowsWithContext) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "boom");
    FAIL() << "require(false) must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  EXPECT_THROW(check_invariant(false, "bug"), InternalError);
}

}  // namespace
}  // namespace sscor
