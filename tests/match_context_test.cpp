// Tests for the shared MatchContext and its cost-replay invariant.
//
// The load-bearing property: for every algorithm that consumes a context
// (Greedy+, Greedy*, Brute Force, the robust variant — and Greedy, which
// validates but ignores it), a run with a precomputed MatchContext returns
// a CorrelationResult identical *in every field, including the paper's
// cost metric* to a cold run.  The fig07-fig10 cost CSVs therefore cannot
// drift depending on whether the evaluation pipeline shared contexts.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sscor/correlation/brute_force.hpp"
#include "sscor/correlation/correlator.hpp"
#include "sscor/correlation/decode_plan.hpp"
#include "sscor/correlation/greedy.hpp"
#include "sscor/correlation/greedy_plus.hpp"
#include "sscor/correlation/greedy_star.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/flow/flow_extractor.hpp"
#include "sscor/flow/pcap_synth.hpp"
#include "sscor/matching/match_context.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/traffic/size_model.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/rng.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

void expect_same_result(const CorrelationResult& cold,
                        const CorrelationResult& cached) {
  EXPECT_EQ(cold.algorithm, cached.algorithm);
  EXPECT_EQ(cold.correlated, cached.correlated);
  EXPECT_EQ(cold.hamming, cached.hamming);
  EXPECT_EQ(cold.best_watermark, cached.best_watermark);
  EXPECT_EQ(cold.cost, cached.cost) << "cost-replay invariant violated";
  EXPECT_EQ(cold.matching_complete, cached.matching_complete);
  EXPECT_EQ(cold.cost_bound_hit, cached.cost_bound_hit);
}

void expect_same_sets(const CandidateSets& a, const CandidateSets& b) {
  ASSERT_EQ(a.upstream_size(), b.upstream_size());
  for (std::size_t i = 0; i < a.upstream_size(); ++i) {
    const auto sa = a.set(i);
    const auto sb = b.set(i);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    for (std::size_t k = 0; k < sa.size(); ++k) {
      EXPECT_EQ(sa[k], sb[k]) << "set " << i << " candidate " << k;
    }
  }
}

/// Runs all five algorithms cold and with a freshly built context and
/// checks field-identical results.
void check_parity(const WatermarkedFlow& marked, const Flow& downstream,
                  const CorrelatorConfig& config) {
  const MatchContext context =
      MatchContext::build(marked.flow, downstream, config.max_delay,
                          config.size_constraint);

  expect_same_result(
      run_greedy_plus(marked.schedule, marked.watermark, marked.flow,
                      downstream, config),
      run_greedy_plus(marked.schedule, marked.watermark, marked.flow,
                      downstream, config, &context));
  expect_same_result(
      run_greedy_star(marked.schedule, marked.watermark, marked.flow,
                      downstream, config),
      run_greedy_star(marked.schedule, marked.watermark, marked.flow,
                      downstream, config, &context));
  expect_same_result(
      run_greedy_plus_robust(marked.schedule, marked.watermark, marked.flow,
                             downstream, config),
      run_greedy_plus_robust(marked.schedule, marked.watermark, marked.flow,
                             downstream, config, {}, &context));

  const DecodePlan plan(marked.schedule, marked.watermark);
  expect_same_result(
      run_greedy(plan, marked.flow, downstream, config),
      run_greedy(plan, marked.flow, downstream, config, &context));
}

/// Brute force is feasible only on the small instances; checked separately
/// with pruning both on and off.
void check_brute_parity(const WatermarkedFlow& marked, const Flow& downstream,
                        const CorrelatorConfig& config) {
  const MatchContext context =
      MatchContext::build(marked.flow, downstream, config.max_delay,
                          config.size_constraint);
  for (const bool prune : {true, false}) {
    BruteForceOptions options;
    options.prune = prune;
    expect_same_result(
        run_brute_force(marked.schedule, marked.watermark, marked.flow,
                        downstream, config, options),
        run_brute_force(marked.schedule, marked.watermark, marked.flow,
                        downstream, config, options, &context));
  }
}

WatermarkParams small_params() {
  WatermarkParams params;
  params.bits = 4;
  params.redundancy = 1;
  params.pair_offset = 1;
  params.embedding_delay = seconds(std::int64_t{2});
  return params;
}

struct SmallInstance {
  WatermarkedFlow marked;
  Flow downstream;
};

SmallInstance make_small_instance(std::uint64_t seed, double chaff_rate,
                                  DurationUs delta) {
  const traffic::PoissonFlowModel model(0.5);
  const Flow flow = model.generate(20, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Watermark wm = Watermark::random(small_params().bits, rng);
  const Embedder embedder(small_params(), mix_seeds(seed, 3));
  SmallInstance instance{embedder.embed(flow, wm), Flow{}};
  const traffic::UniformPerturber perturber(delta, mix_seeds(seed, 4));
  const traffic::PoissonChaffInjector chaff(chaff_rate, mix_seeds(seed, 5));
  instance.downstream = chaff.apply(perturber.apply(instance.marked.flow));
  return instance;
}

CorrelatorConfig small_config() {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{1});
  config.hamming_threshold = 1;
  config.cost_bound = 200'000'000;
  return config;
}

TEST(MatchContextParity, AllAlgorithmsOnSmallInstances) {
  for (const std::uint64_t seed : {10u, 11u, 12u, 13u, 14u, 15u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 0.5, seconds(std::int64_t{1}));
    const auto config = small_config();
    check_parity(instance.marked, instance.downstream, config);
    check_brute_parity(instance.marked, instance.downstream, config);
  }
}

TEST(MatchContextParity, UncorrelatedPairsRejectIdentically) {
  // Upstream of one instance against the downstream of another: the
  // incomplete-matching reject path must replay with identical cost too.
  const auto a = make_small_instance(21, 1.0, seconds(std::int64_t{1}));
  const auto b = make_small_instance(22, 1.0, seconds(std::int64_t{1}));
  const auto config = small_config();
  check_parity(a.marked, b.downstream, config);
  check_brute_parity(a.marked, b.downstream, config);
}

TEST(MatchContextParity, SizeConstraint) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    SCOPED_TRACE(seed);
    const auto instance =
        make_small_instance(seed, 0.5, seconds(std::int64_t{1}));
    auto config = small_config();
    config.size_constraint = SizeConstraint{16};
    check_parity(instance.marked, instance.downstream, config);
    check_brute_parity(instance.marked, instance.downstream, config);
  }
}

TEST(MatchContextParity, TightCostBound) {
  // A bound small enough that the replayed matching cost alone exhausts
  // the meter; bound-hit reporting must stay identical.
  const auto instance = make_small_instance(41, 2.0, seconds(std::int64_t{1}));
  auto config = small_config();
  config.cost_bound = 50;
  check_parity(instance.marked, instance.downstream, config);
  check_brute_parity(instance.marked, instance.downstream, config);
}

TEST(MatchContextParity, TcplibFlows) {
  // Paper-scale parameters over the tcplib-style generator (brute force
  // excluded: exponential).
  const traffic::TcplibTelnetModel model;
  const Flow flow = model.generate(400, 0, 71);
  Rng rng(72);
  const Embedder embedder(WatermarkParams{}, 73);
  const WatermarkedFlow marked =
      embedder.embed(flow, Watermark::random(24, rng));
  const traffic::UniformPerturber perturber(seconds(std::int64_t{7}), 74);
  const traffic::PoissonChaffInjector chaff(5.0, 75);
  const Flow downstream = chaff.apply(perturber.apply(marked.flow));

  CorrelatorConfig config;  // defaults: Delta=7s, h=7, bound=10^6
  check_parity(marked, downstream, config);
}

TEST(MatchContextParity, RecordedTraceRoundTrip) {
  // "Recorded" fixture: synthesize the pair into a pcap capture, extract
  // the flows back (keeping zero-payload packets so nothing is dropped),
  // and run parity on the extracted flows — timestamps that survived the
  // usec-resolution pcap round trip.
  const auto instance = make_small_instance(51, 1.0, seconds(std::int64_t{1}));
  const net::FiveTuple up_tuple{net::Ipv4Address::parse("10.1.0.1"),
                                net::Ipv4Address::parse("10.2.0.1"), 40001,
                                22, net::IpProtocol::kTcp};
  const net::FiveTuple down_tuple{net::Ipv4Address::parse("10.2.0.1"),
                                  net::Ipv4Address::parse("10.3.0.1"), 40002,
                                  22, net::IpProtocol::kTcp};
  const auto records =
      synthesize_capture({SynthesisInput{up_tuple, &instance.marked.flow},
                          SynthesisInput{down_tuple, &instance.downstream}});
  ExtractorOptions options;
  options.payload_only = false;
  const auto flows =
      extract_flows(records, pcap::LinkType::kRawIp, options);
  ASSERT_EQ(flows.size(), 2u);
  const Flow& up = flows[0].tuple == up_tuple ? flows[0].flow : flows[1].flow;
  const Flow& down =
      flows[0].tuple == up_tuple ? flows[1].flow : flows[0].flow;
  ASSERT_EQ(up.size(), instance.marked.flow.size());
  ASSERT_EQ(down.size(), instance.downstream.size());

  const WatermarkedFlow extracted{up, instance.marked.schedule,
                                  instance.marked.watermark};
  const auto config = small_config();
  check_parity(extracted, down, config);
  check_brute_parity(extracted, down, config);
}

TEST(MatchContextReuse, AcrossWatermarkHypotheses) {
  // The matching phase is watermark-independent: one context serves every
  // (schedule, watermark) hypothesis a defender scans over the same pair.
  const auto instance = make_small_instance(61, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext context =
      MatchContext::build(instance.marked.flow, instance.downstream,
                          config.max_delay, config.size_constraint);
  Rng rng(62);
  for (std::uint64_t key = 900; key < 904; ++key) {
    SCOPED_TRACE(key);
    const auto schedule = KeySchedule::create(
        small_params(), instance.marked.flow.size(), key);
    const Watermark hypothesis = Watermark::random(small_params().bits, rng);
    expect_same_result(
        run_greedy_plus(schedule, hypothesis, instance.marked.flow,
                        instance.downstream, config),
        run_greedy_plus(schedule, hypothesis, instance.marked.flow,
                        instance.downstream, config, &context));
    expect_same_result(
        run_greedy_star(schedule, hypothesis, instance.marked.flow,
                        instance.downstream, config),
        run_greedy_star(schedule, hypothesis, instance.marked.flow,
                        instance.downstream, config, &context));
  }
}

TEST(MatchContextRecording, CostsMatchManualMeters) {
  const auto instance = make_small_instance(81, 1.5, seconds(std::int64_t{1}));
  const Flow& up = instance.marked.flow;
  const Flow& down = instance.downstream;
  const DurationUs delta = seconds(std::int64_t{1});

  const MatchContext context =
      MatchContext::build(up, down, delta, std::nullopt);

  CostMeter build_meter;
  auto sets = CandidateSets::build(up, down, delta, std::nullopt,
                                   build_meter);
  EXPECT_EQ(context.build_cost(), build_meter.accesses());
  expect_same_sets(context.built_sets(), sets);
  EXPECT_EQ(context.complete(), sets.complete());

  ASSERT_TRUE(sets.complete());
  CostMeter prune_meter;
  const bool ok = sets.prune(prune_meter);
  EXPECT_EQ(context.prune_ok(), ok);
  EXPECT_EQ(context.prune_cost(), prune_meter.accesses());
  expect_same_sets(context.pruned_sets(), sets);
}

TEST(MatchContextRecording, QuantizedSizeHoistIsEquivalent) {
  const auto instance = make_small_instance(82, 1.0, seconds(std::int64_t{1}));
  const Flow& up = instance.marked.flow;
  const Flow& down = instance.downstream;
  const DurationUs delta = seconds(std::int64_t{1});
  const SizeConstraint size{16};

  CostMeter scan_meter;
  const auto windows = scan_match_windows(up.timestamps(), down.timestamps(),
                                          delta, scan_meter);

  CostMeter inline_meter;
  const auto built_inline = CandidateSets::build_from_windows(
      windows, up, down, size, {}, inline_meter);

  std::vector<std::uint32_t> quantized;
  for (std::size_t i = 0; i < up.size(); ++i) {
    quantized.push_back(
        traffic::quantize_size(up.packet(i).size, size.block_bytes));
  }
  CostMeter hoisted_meter;
  const auto built_hoisted = CandidateSets::build_from_windows(
      windows, up, down, size, quantized, hoisted_meter);

  expect_same_sets(built_inline, built_hoisted);
  EXPECT_EQ(inline_meter.accesses(), hoisted_meter.accesses());

  // The context hoists exactly these values.
  const MatchContext context = MatchContext::build(up, down, delta, size);
  ASSERT_EQ(context.upstream_quantized_sizes().size(), up.size());
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_EQ(context.upstream_quantized_sizes()[i], quantized[i]);
  }
}

TEST(MatchContextApi, MatchesChecksPairIdentityAndKey) {
  const auto a = make_small_instance(91, 0.5, seconds(std::int64_t{1}));
  const auto b = make_small_instance(92, 0.5, seconds(std::int64_t{1}));
  const DurationUs delta = seconds(std::int64_t{1});
  const MatchContext context =
      MatchContext::build(a.marked.flow, a.downstream, delta, std::nullopt);

  EXPECT_TRUE(
      context.matches(a.marked.flow, a.downstream, delta, std::nullopt));
  EXPECT_FALSE(
      context.matches(b.marked.flow, a.downstream, delta, std::nullopt));
  EXPECT_FALSE(
      context.matches(a.marked.flow, b.downstream, delta, std::nullopt));
  EXPECT_FALSE(context.matches(a.marked.flow, a.downstream,
                               seconds(std::int64_t{2}), std::nullopt));
  EXPECT_FALSE(context.matches(a.marked.flow, a.downstream, delta,
                               SizeConstraint{16}));
}

TEST(MatchContextApi, CorrelatorFallsBackOnMismatchedContext) {
  // A context for the wrong pair is silently dropped by the high-level
  // Correlator: the result equals a cold run on the actual pair.
  const auto a = make_small_instance(93, 0.5, seconds(std::int64_t{1}));
  const auto b = make_small_instance(94, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext wrong =
      MatchContext::build(a.marked.flow, a.downstream, config.max_delay,
                          config.size_constraint);
  for (const Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyPlus, Algorithm::kGreedyStar,
        Algorithm::kBruteForce}) {
    SCOPED_TRACE(to_string(algorithm));
    const Correlator correlator(config, algorithm);
    expect_same_result(correlator.correlate(a.marked, b.downstream),
                       correlator.correlate(a.marked, b.downstream, &wrong));
  }
}

TEST(MatchContextApi, RunnersRejectMismatchedContext) {
  // The low-level run_* entry points treat a mismatched context as a
  // precondition violation instead of silently recomputing.
  const auto a = make_small_instance(95, 0.5, seconds(std::int64_t{1}));
  const auto b = make_small_instance(96, 0.5, seconds(std::int64_t{1}));
  const auto config = small_config();
  const MatchContext wrong =
      MatchContext::build(a.marked.flow, a.downstream, config.max_delay,
                          config.size_constraint);
  const WatermarkedFlow& m = a.marked;
  EXPECT_THROW(run_greedy_plus(m.schedule, m.watermark, m.flow, b.downstream,
                               config, &wrong),
               InvalidArgument);
  EXPECT_THROW(run_greedy_star(m.schedule, m.watermark, m.flow, b.downstream,
                               config, &wrong),
               InvalidArgument);
  EXPECT_THROW(run_brute_force(m.schedule, m.watermark, m.flow, b.downstream,
                               config, {}, &wrong),
               InvalidArgument);
  EXPECT_THROW(run_greedy_plus_robust(m.schedule, m.watermark, m.flow,
                                      b.downstream, config, {}, &wrong),
               InvalidArgument);
  const DecodePlan plan(m.schedule, m.watermark);
  EXPECT_THROW(run_greedy(plan, m.flow, b.downstream, config, &wrong),
               InvalidArgument);
}

}  // namespace
}  // namespace sscor
