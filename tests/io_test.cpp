// Tests for the serialization layers: flow text I/O and watermark key
// files.

#include <gtest/gtest.h>

#include <sstream>

#include "sscor/flow/flow_io.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/util/error.hpp"
#include "sscor/watermark/key_file.hpp"

namespace sscor {
namespace {

TEST(FlowIo, RoundTripPreservesEverything) {
  Flow flow({PacketRecord{100, 32, false}, PacketRecord{2'000'000, 48, true},
             PacketRecord{3'500'000, 16, false}},
            "trace-7");
  std::stringstream stream;
  write_flow_text(stream, flow);
  const Flow back = read_flow_text(stream);
  EXPECT_EQ(back.id(), "trace-7");
  ASSERT_EQ(back.size(), flow.size());
  for (std::size_t i = 0; i < flow.size(); ++i) {
    EXPECT_EQ(back.packet(i), flow.packet(i));
  }
}

TEST(FlowIo, FileRoundTrip) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(200, 0, 5);
  const std::string path = testing::TempDir() + "/sscor_flow_io.txt";
  write_flow_file(path, flow);
  const Flow back = read_flow_file(path);
  EXPECT_EQ(back.timestamps(), flow.timestamps());
}

TEST(FlowIo, EmptyFlowAndNoId) {
  std::stringstream stream;
  write_flow_text(stream, Flow{});
  const Flow back = read_flow_text(stream);
  EXPECT_TRUE(back.empty());
  EXPECT_TRUE(back.id().empty());
}

TEST(FlowIo, CommentsAndBlankLinesIgnored) {
  std::stringstream stream(
      "# sscor-flow v1 x\n\n# a comment\n10 1 0\n20 2 1\n");
  const Flow back = read_flow_text(stream);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.packet(1).is_chaff);
}

TEST(FlowIo, RejectsMalformedInput) {
  {
    std::stringstream s("not a flow\n");
    EXPECT_THROW(read_flow_text(s), IoError);
  }
  {
    std::stringstream s("# sscor-flow v1\n10 abc 0\n");
    EXPECT_THROW(read_flow_text(s), IoError);
  }
  {
    std::stringstream s("# sscor-flow v1\n10 1 7\n");
    EXPECT_THROW(read_flow_text(s), IoError);
  }
  {
    std::stringstream s("# sscor-flow v1\n20 1 0\n10 1 0\n");
    EXPECT_THROW(read_flow_text(s), IoError);  // decreasing timestamps
  }
  EXPECT_THROW(read_flow_file("/nonexistent/flow.txt"), IoError);
}

TEST(FlowIo, RejectsTrailingTokens) {
  // Regression: trailing garbage after the chaff field used to be silently
  // accepted, so a corrupt or concatenated file parsed as a valid flow.
  for (const char* line : {"10 1 0 junk\n", "10 1 0 0\n", "10 1 1 10 1 1\n"}) {
    std::stringstream s(std::string("# sscor-flow v1\n") + line);
    EXPECT_THROW(read_flow_text(s), IoError) << "line: " << line;
  }
}

TEST(FlowIo, RejectsNegativeSize) {
  // Regression: a negative size extracted into the unsigned field used to
  // wrap modulo 2^32 without setting failbit, producing a ~4-billion-byte
  // "packet".  An explicit sign on the chaff flag must fail too.
  for (const char* line : {"10 -5 0\n", "10 -0 0\n", "10 1 -1\n"}) {
    std::stringstream s(std::string("# sscor-flow v1\n") + line);
    EXPECT_THROW(read_flow_text(s), IoError) << "line: " << line;
  }
  // Negative timestamps stay legal (the epoch is arbitrary).
  std::stringstream ok("# sscor-flow v1\n-10 1 0\n-5 2 1\n");
  const Flow flow = read_flow_text(ok);
  ASSERT_EQ(flow.size(), 2u);
  EXPECT_EQ(flow.packet(0).timestamp, -10);
  EXPECT_TRUE(flow.packet(1).is_chaff);
}

TEST(KeyFile, RoundTrip) {
  WatermarkSecret secret;
  secret.params.bits = 24;
  secret.params.redundancy = 4;
  secret.params.pair_offset = 2;
  secret.params.embedding_delay = millis(600);
  secret.key = 0xdeadbeefcafeULL;
  Rng rng(1);
  secret.watermark = Watermark::random(24, rng);

  std::stringstream stream;
  write_secret_text(stream, secret);
  const WatermarkSecret back = read_secret_text(stream);
  EXPECT_EQ(back.params.bits, secret.params.bits);
  EXPECT_EQ(back.params.redundancy, secret.params.redundancy);
  EXPECT_EQ(back.params.pair_offset, secret.params.pair_offset);
  EXPECT_EQ(back.params.embedding_delay, secret.params.embedding_delay);
  EXPECT_EQ(back.key, secret.key);
  EXPECT_EQ(back.watermark, secret.watermark);

  // The re-derived schedule matches the embedding side's.
  const auto a = secret.schedule_for(1000);
  const auto b = back.schedule_for(1000);
  EXPECT_EQ(a.relevant_packets(), b.relevant_packets());
}

TEST(KeyFile, FileRoundTrip) {
  WatermarkSecret secret;
  secret.key = 42;
  Rng rng(2);
  secret.watermark = Watermark::random(secret.params.bits, rng);
  const std::string path = testing::TempDir() + "/sscor_key.txt";
  write_secret_file(path, secret);
  EXPECT_EQ(read_secret_file(path).key, 42u);
}

TEST(KeyFile, RejectsMalformedInput) {
  {
    std::stringstream s("wrong header\n");
    EXPECT_THROW(read_secret_text(s), IoError);
  }
  {
    std::stringstream s("# sscor-key v1\nbits 24\n");  // missing fields
    EXPECT_THROW(read_secret_text(s), IoError);
  }
  {
    std::stringstream s(
        "# sscor-key v1\nbits 4\nredundancy 1\npair_offset 1\n"
        "embedding_delay_us 1000\nkey 1\nwatermark 10\n");  // wrong length
    EXPECT_THROW(read_secret_text(s), Error);
  }
  {
    std::stringstream s(
        "# sscor-key v1\nbits xx\nredundancy 1\npair_offset 1\n"
        "embedding_delay_us 1000\nkey 1\nwatermark 1010\n");
    EXPECT_THROW(read_secret_text(s), IoError);
  }
}

TEST(KeyFile, RejectsInconsistentSecretOnWrite) {
  WatermarkSecret secret;
  secret.watermark = Watermark::parse("10");  // 2 bits vs params 24
  std::stringstream stream;
  EXPECT_THROW(write_secret_text(stream, secret), InvalidArgument);
}

}  // namespace
}  // namespace sscor
