// Tests for bidirectional connections: the session generator's coupled
// directions and connection-level correlation policies.

#include <gtest/gtest.h>

#include "sscor/correlation/connection_correlator.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"

namespace sscor {
namespace {

Connection transform(const Connection& connection, DurationUs delta,
                     double chaff_rate, std::uint64_t seed) {
  const traffic::UniformPerturber fwd(delta, mix_seeds(seed, 1));
  const traffic::PoissonChaffInjector fwd_chaff(chaff_rate,
                                                mix_seeds(seed, 2));
  const traffic::UniformPerturber rev(delta, mix_seeds(seed, 3));
  const traffic::PoissonChaffInjector rev_chaff(chaff_rate,
                                                mix_seeds(seed, 4));
  return Connection{fwd_chaff.apply(fwd.apply(connection.client_to_server)),
                    rev_chaff.apply(rev.apply(connection.server_to_client))};
}

TEST(ConnectionGenerator, CoupledDirections) {
  const traffic::InteractiveSessionModel model;
  const Connection c = model.generate_connection(600, millis(50), 11);
  ASSERT_EQ(c.client_to_server.size(), 600u);
  EXPECT_EQ(c.client_to_server.start_time(), millis(50));
  // Echo traffic plus output bursts: the reverse direction is larger.
  EXPECT_GT(c.server_to_client.size(), c.client_to_server.size());
  // Every keystroke is echoed shortly after (the echo is the next
  // reverse-direction packet at or after the keystroke).
  std::size_t j = 0;
  for (std::size_t i = 0; i < c.client_to_server.size(); ++i) {
    const TimeUs t = c.client_to_server.timestamp(i);
    while (j < c.server_to_client.size() &&
           c.server_to_client.timestamp(j) < t) {
      ++j;
    }
    ASSERT_LT(j, c.server_to_client.size()) << "keystroke " << i;
    EXPECT_LE(c.server_to_client.timestamp(j) - t, millis(60))
        << "echo too late for keystroke " << i;
  }
  // Deterministic.
  const Connection again = model.generate_connection(600, millis(50), 11);
  EXPECT_EQ(again.client_to_server.timestamps(),
            c.client_to_server.timestamps());
  EXPECT_EQ(again.server_to_client.timestamps(),
            c.server_to_client.timestamps());
}

TEST(ConnectionGenerator, MergedInterleavesBothDirections) {
  const traffic::InteractiveSessionModel model;
  const Connection c = model.generate_connection(100, 0, 13);
  const Flow merged = c.merged();
  EXPECT_EQ(merged.size(),
            c.client_to_server.size() + c.server_to_client.size());
}

TEST(ConnectionCorrelator, EmbedProducesIndependentWatermarks) {
  const traffic::InteractiveSessionModel model;
  const Connection c = model.generate_connection(1000, 0, 17);
  const auto marked =
      ConnectionCorrelator::embed(c, WatermarkParams{}, 0xaa55);
  EXPECT_NE(marked.forward.watermark, marked.reverse.watermark);
  EXPECT_NE(marked.forward.schedule.relevant_packets(),
            marked.reverse.schedule.relevant_packets());
  EXPECT_EQ(marked.forward.flow.size(), c.client_to_server.size());
  EXPECT_EQ(marked.reverse.flow.size(), c.server_to_client.size());
}

TEST(ConnectionCorrelator, PoliciesDecideAsDocumented) {
  const traffic::InteractiveSessionModel model;
  const DurationUs delta = seconds(std::int64_t{4});
  CorrelatorConfig config;
  config.max_delay = delta;

  const Connection origin = model.generate_connection(1000, 0, 19);
  const auto marked =
      ConnectionCorrelator::embed(origin, WatermarkParams{}, 0x77);
  const Connection downstream = transform(
      Connection{marked.forward.flow, marked.reverse.flow}, delta, 1.5, 23);
  const Connection unrelated = transform(
      model.generate_connection(1000, 0, 29), delta, 1.5, 31);

  for (const auto policy :
       {ConnectionPolicy::kForwardOnly, ConnectionPolicy::kEither,
        ConnectionPolicy::kBoth}) {
    const ConnectionCorrelator correlator(config, Algorithm::kGreedyPlus,
                                          policy);
    EXPECT_TRUE(correlator.correlate(marked, downstream).correlated)
        << static_cast<int>(policy);
    EXPECT_FALSE(correlator.correlate(marked, unrelated).correlated)
        << static_cast<int>(policy);
  }
}

TEST(ConnectionCorrelator, BothPolicyIsStrictest) {
  // On random pairs, kBoth accepts a subset of kForwardOnly, which accepts
  // a subset of kEither.
  const traffic::InteractiveSessionModel model;
  const DurationUs delta = seconds(std::int64_t{7});
  CorrelatorConfig config;
  config.max_delay = delta;
  const ConnectionCorrelator both(config, Algorithm::kGreedyPlus,
                                  ConnectionPolicy::kBoth);
  const ConnectionCorrelator forward(config, Algorithm::kGreedyPlus,
                                     ConnectionPolicy::kForwardOnly);
  const ConnectionCorrelator either(config, Algorithm::kGreedyPlus,
                                    ConnectionPolicy::kEither);

  for (int t = 0; t < 6; ++t) {
    const Connection a = model.generate_connection(800, 0, 4100 + t);
    const auto marked =
        ConnectionCorrelator::embed(a, WatermarkParams{}, 4200 + t);
    const Connection candidate =
        transform(model.generate_connection(800, 0, 4300 + t), delta, 5.0,
                  4400 + t);
    const bool b = both.correlate(marked, candidate).correlated;
    const bool f = forward.correlate(marked, candidate).correlated;
    const bool e = either.correlate(marked, candidate).correlated;
    EXPECT_LE(b, f) << "kBoth accepted what kForwardOnly rejected";
    EXPECT_LE(f, e) << "kForwardOnly accepted what kEither rejected";
  }
}

}  // namespace
}  // namespace sscor
