// Determinism regression tests for the pooled experiment harness.
//
// The schedule-independence guarantee (DESIGN.md §8): the set of work items
// and each item's computation are functions of (config, seed) only, and all
// statistical reductions run sequentially — so every metric, and therefore
// every rendered table, is byte-identical whether a sweep runs fully
// serial (threads=1), on the shared pool, or twice in a row.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sscor/experiment/dataset.hpp"
#include "sscor/experiment/evaluation.hpp"
#include "sscor/experiment/sweep.hpp"

namespace sscor::experiment {
namespace {

ExperimentConfig tiny_config(unsigned threads) {
  ExperimentConfig config;
  config.flows = 4;
  config.packets_per_flow = 400;
  config.fp_pairs = 6;
  config.threads = threads;
  return config;
}

std::vector<DetectorMetrics> evaluate_with_threads(unsigned threads) {
  const auto config = tiny_config(threads);
  const Dataset dataset = Dataset::build(config);
  const auto detectors = paper_detectors(config, seconds(std::int64_t{2}));
  EvaluationRequest request;
  request.max_delay = seconds(std::int64_t{2});
  request.chaff_rate = 1.0;
  request.run_detection = true;
  request.run_false_positive = true;
  return evaluate_point(dataset, detectors, request);
}

void expect_identical(const std::vector<DetectorMetrics>& a,
                      const std::vector<DetectorMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    SCOPED_TRACE(a[d].detector);
    EXPECT_EQ(a[d].detector, b[d].detector);
    // Exact (bitwise) equality: identical arithmetic must run per item and
    // per reduction regardless of the schedule.
    EXPECT_EQ(a[d].detection_rate, b[d].detection_rate);
    EXPECT_EQ(a[d].false_positive_rate, b[d].false_positive_rate);
    EXPECT_EQ(a[d].cost_correlated.count(), b[d].cost_correlated.count());
    EXPECT_EQ(a[d].cost_correlated.mean(), b[d].cost_correlated.mean());
    EXPECT_EQ(a[d].cost_correlated.min(), b[d].cost_correlated.min());
    EXPECT_EQ(a[d].cost_correlated.max(), b[d].cost_correlated.max());
    EXPECT_EQ(a[d].cost_uncorrelated.count(),
              b[d].cost_uncorrelated.count());
    EXPECT_EQ(a[d].cost_uncorrelated.mean(), b[d].cost_uncorrelated.mean());
    EXPECT_EQ(a[d].cost_uncorrelated.min(), b[d].cost_uncorrelated.min());
    EXPECT_EQ(a[d].cost_uncorrelated.max(), b[d].cost_uncorrelated.max());
  }
}

SweepSpec small_spec(Metric metric) {
  SweepSpec spec;
  spec.metric = metric;
  spec.axis = SweepAxis::kChaffRate;
  spec.fixed_delay = seconds(std::int64_t{2});
  spec.chaff_rates = {0.0, 1.0};
  return spec;
}

const Metric kAllMetrics[] = {
    Metric::kDetectionRate,
    Metric::kFalsePositiveRate,
    Metric::kCostCorrelated,
    Metric::kCostUncorrelated,
};

TEST(ParallelDeterminism, EvaluatePointSerialVersusPooled) {
  const auto serial = evaluate_with_threads(1);
  const auto pooled = evaluate_with_threads(4);
  expect_identical(serial, pooled);
}

TEST(ParallelDeterminism, EvaluatePointPooledRunsRepeat) {
  const auto first = evaluate_with_threads(4);
  const auto second = evaluate_with_threads(4);
  expect_identical(first, second);
}

TEST(ParallelDeterminism, SweepTablesByteIdenticalAcrossThreadCounts) {
  for (const Metric metric : kAllMetrics) {
    SCOPED_TRACE(to_string(metric));
    const SweepSpec spec = small_spec(metric);
    const std::string serial =
        run_sweep(tiny_config(1), spec).to_csv();
    const std::string pooled =
        run_sweep(tiny_config(4), spec).to_csv();
    EXPECT_EQ(serial, pooled);
  }
}

TEST(ParallelDeterminism, ConsecutivePooledSweepsByteIdentical) {
  const SweepSpec spec = small_spec(Metric::kDetectionRate);
  const std::string first = run_sweep(tiny_config(4), spec).to_csv();
  const std::string second = run_sweep(tiny_config(4), spec).to_csv();
  EXPECT_EQ(first, second);
}

TEST(ParallelDeterminism, MaxDelayAxisSerialVersusPooled) {
  SweepSpec spec;
  spec.metric = Metric::kFalsePositiveRate;
  spec.axis = SweepAxis::kMaxDelay;
  spec.fixed_chaff = 1.0;
  spec.max_delays = {0, seconds(std::int64_t{1})};
  EXPECT_EQ(run_sweep(tiny_config(1), spec).to_csv(),
            run_sweep(tiny_config(4), spec).to_csv());
}

}  // namespace
}  // namespace sscor::experiment
