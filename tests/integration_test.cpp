// End-to-end integration tests: the full tracing pipeline from traffic
// generation through pcap files, flow extraction, watermark embedding,
// adversarial transforms, and every correlation algorithm — the complete
// story the paper tells, on one synthetic testbed.

#include <gtest/gtest.h>

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/correlation/correlator.hpp"
#include "sscor/flow/clock_model.hpp"
#include "sscor/flow/flow_extractor.hpp"
#include "sscor/flow/pcap_synth.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/loss_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

constexpr DurationUs kDelta = seconds(std::int64_t{4});

struct Testbed {
  WatermarkedFlow marked;
  Flow downstream;        // perturbed + chaffed copy of marked.flow
  Flow decoy_downstream;  // perturbed + chaffed copy of an unrelated flow
};

Testbed make_testbed(std::uint64_t seed) {
  const traffic::InteractiveSessionModel model;
  const Flow attack = model.generate(1000, 0, mix_seeds(seed, 1));
  const Flow decoy = model.generate(1000, 0, mix_seeds(seed, 2));

  Rng rng(mix_seeds(seed, 3));
  WatermarkParams params;
  const Embedder embedder(params, mix_seeds(seed, 4));
  Testbed tb{embedder.embed(attack, Watermark::random(params.bits, rng)),
             Flow{}, Flow{}};

  traffic::TransformPipeline adversary;
  adversary.add(std::make_shared<traffic::UniformPerturber>(
      kDelta, mix_seeds(seed, 5)));
  adversary.add(std::make_shared<traffic::PoissonChaffInjector>(
      2.0, mix_seeds(seed, 6)));
  tb.downstream = adversary.apply(tb.marked.flow);
  tb.decoy_downstream = adversary.apply(decoy);
  return tb;
}

TEST(Integration, AllAlgorithmsAgreeOnTheAttackFlow) {
  int plus_hits = 0;
  int star_hits = 0;
  int greedy_hits = 0;
  int plus_false = 0;
  int star_false = 0;
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    const Testbed tb = make_testbed(9000 + t);
    CorrelatorConfig config;
    config.max_delay = kDelta;
    greedy_hits += Correlator(config, Algorithm::kGreedy)
                       .correlate(tb.marked, tb.downstream)
                       .correlated;
    plus_hits += Correlator(config, Algorithm::kGreedyPlus)
                     .correlate(tb.marked, tb.downstream)
                     .correlated;
    star_hits += Correlator(config, Algorithm::kGreedyStar)
                     .correlate(tb.marked, tb.downstream)
                     .correlated;
    plus_false += Correlator(config, Algorithm::kGreedyPlus)
                      .correlate(tb.marked, tb.decoy_downstream)
                      .correlated;
    star_false += Correlator(config, Algorithm::kGreedyStar)
                      .correlate(tb.marked, tb.decoy_downstream)
                      .correlated;
  }
  EXPECT_EQ(greedy_hits, kTrials);
  EXPECT_GE(plus_hits, kTrials - 1);
  EXPECT_GE(star_hits, kTrials - 1);
  EXPECT_LE(plus_false, 1);
  EXPECT_LE(star_false, 1);
}

// The full file-based pipeline: synthesize the stepping-stone scenario into
// pcap captures (upstream and downstream monitoring points), read them
// back, extract flows, and correlate.
TEST(Integration, PcapRoundTripPipeline) {
  const Testbed tb = make_testbed(77);
  const net::FiveTuple up_tuple{net::Ipv4Address::parse("10.1.0.1"),
                                net::Ipv4Address::parse("10.2.0.1"), 38211,
                                22, net::IpProtocol::kTcp};
  const net::FiveTuple down_tuple{net::Ipv4Address::parse("10.2.0.1"),
                                  net::Ipv4Address::parse("10.3.0.1"), 41999,
                                  22, net::IpProtocol::kTcp};
  const net::FiveTuple decoy_tuple{net::Ipv4Address::parse("10.2.0.9"),
                                   net::Ipv4Address::parse("10.3.0.9"),
                                   51111, 22, net::IpProtocol::kTcp};

  const std::string up_path = testing::TempDir() + "/sscor_up.pcap";
  const std::string down_path = testing::TempDir() + "/sscor_down.pcap";
  write_capture_file(up_path, {SynthesisInput{up_tuple, &tb.marked.flow}});
  write_capture_file(down_path,
                     {SynthesisInput{down_tuple, &tb.downstream},
                      SynthesisInput{decoy_tuple, &tb.decoy_downstream}});

  const auto upstream_flows = extract_flows_from_file(up_path);
  ASSERT_EQ(upstream_flows.size(), 1u);
  ASSERT_EQ(upstream_flows[0].flow.size(), tb.marked.flow.size());

  const auto downstream_flows = extract_flows_from_file(down_path);
  ASSERT_EQ(downstream_flows.size(), 2u);

  // Rebuild the watermarked-flow handle around the *extracted* upstream
  // flow (as a real deployment would: the schedule/key are shared secrets).
  WatermarkedFlow extracted{upstream_flows[0].flow, tb.marked.schedule,
                            tb.marked.watermark};

  CorrelatorConfig config;
  config.max_delay = kDelta;
  const Correlator correlator(config, Algorithm::kGreedyPlus);
  int correlated_count = 0;
  for (const auto& candidate : downstream_flows) {
    const auto result = correlator.correlate(extracted, candidate.flow);
    if (result.correlated) {
      ++correlated_count;
      EXPECT_EQ(candidate.tuple, down_tuple) << "wrong flow identified";
    }
  }
  EXPECT_EQ(correlated_count, 1);
}

// Clocks at the two monitoring points disagree; adjusting with the known
// skew restores correlation.
TEST(Integration, ClockSkewAdjustment) {
  const Testbed tb = make_testbed(88);
  const ClockModel remote_clock(seconds(std::int64_t{120}), 25.0);
  // The downstream monitor records remote-clock timestamps.
  std::vector<PacketRecord> remote_packets(tb.downstream.packets().begin(),
                                           tb.downstream.packets().end());
  for (auto& p : remote_packets) p.timestamp = remote_clock.to_remote(p.timestamp);
  const Flow remote_view(std::move(remote_packets));

  CorrelatorConfig config;
  config.max_delay = kDelta;
  const Correlator correlator(config, Algorithm::kGreedyPlus);
  // Unadjusted: the 2-minute offset pushes everything out of the window.
  EXPECT_FALSE(correlator.correlate(tb.marked, remote_view).correlated);
  // Adjusted with the known skew: correlation is restored.
  const Flow adjusted = remote_clock.adjust(remote_view);
  EXPECT_TRUE(correlator.correlate(tb.marked, adjusted).correlated);
}

// A two-hop chain: each relay perturbs within Delta/2 and adds chaff; the
// total delay stays within Delta, so the watermark still identifies the
// flow two hops downstream (the paper's connection-chain setting).
TEST(Integration, TwoHopSteppingStoneChain) {
  const traffic::InteractiveSessionModel model;
  WatermarkParams params;
  int hits = 0;
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    const Flow attack = model.generate(1000, 0, 6100 + t);
    Rng rng(6200 + t);
    const Embedder embedder(params, 6300 + t);
    const auto marked = embedder.embed(attack,
                                       Watermark::random(params.bits, rng));
    const traffic::UniformPerturber hop1(kDelta / 2, 6400 + t);
    const traffic::PoissonChaffInjector chaff1(1.0, 6500 + t);
    const traffic::UniformPerturber hop2(kDelta / 2, 6600 + t);
    const traffic::PoissonChaffInjector chaff2(1.0, 6700 + t);
    const Flow two_hops_down =
        chaff2.apply(hop2.apply(chaff1.apply(hop1.apply(marked.flow))));

    CorrelatorConfig config;
    config.max_delay = kDelta;
    hits += Correlator(config, Algorithm::kGreedyPlus)
                .correlate(marked, two_hops_down)
                .correlated;
  }
  EXPECT_GE(hits, kTrials - 1);
}

// Where the assumptions break (paper §6 future work): loss and
// re-packetization violate assumption 1 and degrade the matching-based
// correlation.
TEST(Integration, LossBreaksMatchingCompleteness) {
  const Testbed tb = make_testbed(99);
  const traffic::LossRepacketizationModel loss(0.05, millis(20), 123);
  const Flow lossy = loss.apply(tb.downstream);
  CorrelatorConfig config;
  config.max_delay = kDelta;
  const auto result = Correlator(config, Algorithm::kGreedyPlus)
                          .correlate(tb.marked, lossy);
  // With packets missing, the full matching cannot be complete.
  EXPECT_FALSE(result.matching_complete);
  EXPECT_FALSE(result.correlated);
}

TEST(Integration, BaselinesOnTheSameTestbed) {
  const Testbed tb = make_testbed(111);
  const BasicWatermarkDetector basic(7);
  EXPECT_FALSE(basic.detect(tb.marked, tb.downstream).correlated)
      << "chaff must destroy the positional decoder";
  ZhangPassiveParams zp;
  zp.max_delay = kDelta;
  const ZhangPassiveDetector zhang(zp);
  EXPECT_TRUE(zhang.detect(tb.marked, tb.downstream).correlated);
}

}  // namespace
}  // namespace sscor
