// Targeted tests for paths the broader suites exercise only implicitly:
// detector scores (the ROC interface), the online correlator under the
// Greedy algorithm, the robust correlator with the size constraint, and
// the remaining sweep metrics.

#include <gtest/gtest.h>

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/blum_counting.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/correlation/online.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/experiment/sweep.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

WatermarkedFlow make_marked(std::uint64_t seed) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(1000, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Embedder embedder(WatermarkParams{}, mix_seeds(seed, 3));
  return embedder.embed(flow, Watermark::random(24, rng));
}

TEST(DetectorScores, SmallerMeansMoreLikelyCorrelated) {
  const auto marked = make_marked(1);
  const traffic::UniformPerturber perturber(seconds(std::int64_t{4}), 5);
  const traffic::PoissonChaffInjector chaff(2.0, 7);
  const Flow downstream = chaff.apply(perturber.apply(marked.flow));
  const auto unrelated_marked = make_marked(2);
  const Flow unrelated =
      chaff.apply(perturber.apply(unrelated_marked.flow));

  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  const CorrelatorDetector plus(config, Algorithm::kGreedyPlus);
  const BasicWatermarkDetector basic(7);
  ZhangPassiveParams zp;
  zp.max_delay = config.max_delay;
  const ZhangPassiveDetector zhang(zp);
  BlumCountingParams bp;
  bp.max_delay = config.max_delay;
  const BlumCountingDetector blum(bp);

  for (const Detector* detector :
       std::initializer_list<const Detector*>{&plus, &basic, &zhang,
                                              &blum}) {
    const auto hit = detector->detect(marked, downstream);
    const auto miss = detector->detect(marked, unrelated);
    ASSERT_TRUE(hit.score.has_value()) << detector->name();
    ASSERT_TRUE(miss.score.has_value()) << detector->name();
    // Only the chaff-resistant scores are expected to separate: BasicWM
    // decodes noise under chaff (both scores hover near l/2 = 12) and
    // Blum's deficit saturates when the chaffed downstream always outruns
    // the upstream count.
    if (detector->name() == "Greedy+" || detector->name() == "Zhang") {
      EXPECT_LT(*hit.score, *miss.score) << detector->name();
    } else if (detector->name() == "Blum") {
      EXPECT_LE(*hit.score, *miss.score) << detector->name();
    }
  }
}

TEST(OnlineGreedy, MatchesOfflineGreedyDecision) {
  // Greedy never requires complete matching, so the online variant's only
  // early exit is the doomed-bits bound; the final verdicts must agree.
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  for (int t = 0; t < 4; ++t) {
    const auto marked = make_marked(100 + t);
    const auto other = make_marked(200 + t);
    const traffic::UniformPerturber perturber(config.max_delay, 300 + t);
    for (const Flow* source : {&marked.flow, &other.flow}) {
      const Flow down = perturber.apply(*source);
      OnlineCorrelator online(marked, config, Algorithm::kGreedy);
      for (const auto& p : down.packets()) {
        if (!online.ingest(p)) break;
      }
      online.finish();
      const auto offline = Correlator(config, Algorithm::kGreedy)
                               .correlate(marked, down);
      EXPECT_EQ(online.result().correlated, offline.correlated)
          << "trial " << t;
    }
  }
}

TEST(OnlineGreedy, DoomedBitsRejectDisjointStreams) {
  // Greedy has no complete-matching early exit, so a time-disjoint stream
  // must be rejected through the doomed-bits bound instead (every bit's
  // windows finalise empty -> unmatched -> provably mismatched).
  CorrelatorConfig config;
  config.max_delay = millis(500);
  const auto marked = make_marked(42);
  const Flow late = marked.flow.shifted(seconds(std::int64_t{3600}));
  OnlineCorrelator online(marked, config, Algorithm::kGreedy);
  std::size_t consumed = 0;
  for (const auto& p : late.packets()) {
    ++consumed;
    if (!online.ingest(p)) break;
  }
  EXPECT_TRUE(online.early_rejected());
  EXPECT_LT(consumed, late.size());
  EXPECT_GT(online.provably_mismatched_bits(), config.hamming_threshold);
  EXPECT_FALSE(online.result().correlated);
}

TEST(Robust, WorksWithSizeConstraint) {
  const auto marked = make_marked(51);
  const traffic::UniformPerturber perturber(seconds(std::int64_t{3}), 53);
  const traffic::PoissonChaffInjector chaff(
      2.0, 59, std::make_shared<traffic::TelnetSizeModel>());
  const Flow down = chaff.apply(perturber.apply(marked.flow));
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  config.size_constraint = SizeConstraint{16};
  const auto r = run_greedy_plus_robust(marked.schedule, marked.watermark,
                                        marked.flow, down, config);
  EXPECT_TRUE(r.correlated);
}

TEST(Sweep, AllFourMetricsProduceTables) {
  using namespace experiment;
  ExperimentConfig config;
  config.flows = 4;
  config.packets_per_flow = 500;
  config.fp_pairs = 6;
  for (const Metric metric :
       {Metric::kDetectionRate, Metric::kFalsePositiveRate,
        Metric::kCostCorrelated, Metric::kCostUncorrelated}) {
    SweepSpec spec;
    spec.metric = metric;
    spec.axis = SweepAxis::kChaffRate;
    spec.fixed_delay = seconds(std::int64_t{2});
    spec.chaff_rates = {1.0};
    const TextTable table = run_sweep(config, spec);
    EXPECT_EQ(table.rows(), 1u) << to_string(metric);
    EXPECT_EQ(table.columns(), 6u) << to_string(metric);
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  using namespace experiment;
  ExperimentConfig config;
  config.flows = 4;
  config.packets_per_flow = 500;
  config.fp_pairs = 6;
  SweepSpec spec;
  spec.metric = Metric::kFalsePositiveRate;
  spec.chaff_rates = {2.0};
  config.threads = 1;
  const std::string single = run_sweep(config, spec).to_csv();
  config.threads = 4;
  const std::string multi = run_sweep(config, spec).to_csv();
  EXPECT_EQ(single, multi);
}

}  // namespace
}  // namespace sscor
