// Unit and property tests for sscor/watermark: bit strings, key schedules,
// embedding, and positional decoding.

#include <gtest/gtest.h>

#include <set>

#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/error.hpp"
#include "sscor/watermark/decoder.hpp"
#include "sscor/watermark/embedder.hpp"
#include "sscor/watermark/key_schedule.hpp"
#include "sscor/watermark/watermark.hpp"

namespace sscor {
namespace {

TEST(Watermark, ParseAndFormat) {
  const Watermark wm = Watermark::parse("10110");
  EXPECT_EQ(wm.size(), 5u);
  EXPECT_EQ(wm.bit(0), 1);
  EXPECT_EQ(wm.bit(4), 0);
  EXPECT_EQ(wm.to_string(), "10110");
  EXPECT_THROW(Watermark::parse("10x"), InvalidArgument);
  EXPECT_THROW(Watermark({0, 1, 2}), InvalidArgument);
}

TEST(Watermark, HammingDistance) {
  const Watermark a = Watermark::parse("1010");
  const Watermark b = Watermark::parse("1001");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_THROW(a.hamming_distance(Watermark::parse("10")), InvalidArgument);
}

TEST(Watermark, RandomIsBalanced) {
  Rng rng(1);
  std::size_t ones = 0;
  constexpr std::size_t kBits = 20'000;
  const Watermark wm = Watermark::random(kBits, rng);
  for (std::size_t i = 0; i < kBits; ++i) ones += wm.bit(i);
  EXPECT_NEAR(static_cast<double>(ones), kBits / 2.0, 300.0);
}

TEST(Watermark, SetBit) {
  Watermark wm = Watermark::parse("000");
  wm.set_bit(1, 1);
  EXPECT_EQ(wm.to_string(), "010");
  EXPECT_THROW(wm.set_bit(0, 2), InvalidArgument);
}

TEST(Params, Validation) {
  WatermarkParams params;
  EXPECT_NO_THROW(params.validate());
  EXPECT_EQ(params.total_pairs(), 24u * 8u);
  params.redundancy = 0;
  EXPECT_THROW(params.validate(), InvalidArgument);
}

class KeyScheduleTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyScheduleTest, PairsAreDisjointAndInRange) {
  WatermarkParams params;
  const std::size_t n = 1000;
  const auto schedule = KeySchedule::create(params, n, GetParam());

  std::set<std::uint32_t> used;
  std::size_t pair_count = 0;
  for (const auto& plan : schedule.bit_plans()) {
    EXPECT_EQ(plan.group1.size(), params.redundancy);
    EXPECT_EQ(plan.group2.size(), params.redundancy);
    for (const auto* group : {&plan.group1, &plan.group2}) {
      for (const auto& pair : *group) {
        ++pair_count;
        EXPECT_EQ(pair.second, pair.first + params.pair_offset);
        EXPECT_LT(pair.second, n);
        EXPECT_TRUE(used.insert(pair.first).second)
            << "packet used twice: " << pair.first;
        EXPECT_TRUE(used.insert(pair.second).second)
            << "packet used twice: " << pair.second;
      }
    }
  }
  EXPECT_EQ(pair_count, params.total_pairs());
  EXPECT_EQ(schedule.relevant_packets().size(), 2 * params.total_pairs());
  EXPECT_TRUE(std::is_sorted(schedule.relevant_packets().begin(),
                             schedule.relevant_packets().end()));
  EXPECT_EQ(schedule.max_packet_index(), *used.rbegin());
}

INSTANTIATE_TEST_SUITE_P(Keys, KeyScheduleTest,
                         testing::Values(0, 1, 42, 0xdeadbeef, 1'000'003));

TEST(KeySchedule, DeterministicInKey) {
  WatermarkParams params;
  const auto a = KeySchedule::create(params, 1000, 7);
  const auto b = KeySchedule::create(params, 1000, 7);
  const auto c = KeySchedule::create(params, 1000, 8);
  EXPECT_EQ(a.relevant_packets(), b.relevant_packets());
  EXPECT_NE(a.relevant_packets(), c.relevant_packets());
  for (std::size_t bit = 0; bit < params.bits; ++bit) {
    for (std::size_t i = 0; i < params.redundancy; ++i) {
      EXPECT_EQ(a.bit_plan(bit).group1[i].first,
                b.bit_plan(bit).group1[i].first);
    }
  }
}

TEST(KeySchedule, RejectsTooShortFlows) {
  WatermarkParams params;  // needs 384 packets in disjoint pairs
  EXPECT_THROW(KeySchedule::create(params, 100, 1), InvalidArgument);
  EXPECT_NO_THROW(KeySchedule::create(params, 500, 1));
}

TEST(KeySchedule, DensePackingSucceeds) {
  // Exactly enough capacity: 8 pairs over 16 packets with d=1.  The
  // systematic fallback must find a perfect pairing.
  WatermarkParams params;
  params.bits = 2;
  params.redundancy = 2;
  for (std::uint64_t key = 0; key < 20; ++key) {
    EXPECT_NO_THROW(KeySchedule::create(params, 16, key)) << key;
  }
}

TEST(KeySchedule, LargerPairOffset) {
  WatermarkParams params;
  params.bits = 4;
  params.redundancy = 2;
  params.pair_offset = 5;
  const auto schedule = KeySchedule::create(params, 300, 3);
  for (const auto& plan : schedule.bit_plans()) {
    for (const auto& pair : plan.group1) {
      EXPECT_EQ(pair.second, pair.first + 5);
    }
  }
}

// A widely spaced flow where the embedding delay can never reorder or clip:
// embedding must shift every selected IPD by exactly +-a, so decoding the
// watermarked flow itself recovers the watermark exactly.
TEST(Embedder, ExactDecodeOnWidelySpacedFlow) {
  WatermarkParams params;
  params.bits = 8;
  params.redundancy = 2;
  params.embedding_delay = millis(600);
  std::vector<TimeUs> timestamps;
  for (int i = 0; i < 100; ++i) {
    timestamps.push_back(seconds(std::int64_t{10}) * i);  // 10s apart
  }
  const Flow flow = Flow::from_timestamps(timestamps);

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Watermark wm = Watermark::random(params.bits, rng);
    const Embedder embedder(params, 1000 + trial);
    const WatermarkedFlow marked = embedder.embed(flow, wm);
    const auto decoded = decode_positional(marked.schedule, marked.flow);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->to_string(), wm.to_string()) << "trial " << trial;
  }
}

TEST(Embedder, DelaysOnlyAndBounded) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(1000, 0, 11);
  WatermarkParams params;
  Rng rng(5);
  const Watermark wm = Watermark::random(params.bits, rng);
  const Embedder embedder(params, 99);
  const WatermarkedFlow marked = embedder.embed(flow, wm);

  ASSERT_EQ(marked.flow.size(), flow.size());
  TimeUs previous = marked.flow.timestamp(0);
  for (std::size_t i = 0; i < flow.size(); ++i) {
    const DurationUs delta = marked.flow.timestamp(i) - flow.timestamp(i);
    EXPECT_GE(delta, 0) << i;
    // Disjoint pairs: each packet is delayed at most once, plus possible
    // FIFO push-through from an immediately preceding delayed packet.
    EXPECT_LE(delta, 2 * params.embedding_delay) << i;
    EXPECT_GE(marked.flow.timestamp(i), previous);
    previous = marked.flow.timestamp(i);
  }
}

TEST(Embedder, ShiftsBitDifferencesTowardTheBit) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(1000, 0, 17);
  WatermarkParams params;
  Rng rng(6);
  const Watermark wm = Watermark::random(params.bits, rng);
  const Embedder embedder(params, 4242);
  const WatermarkedFlow marked = embedder.embed(flow, wm);

  // Compare each bit's D before and after embedding on the same schedule.
  const auto before = flow.timestamps();
  const auto after = marked.flow.timestamps();
  int improved = 0;
  for (std::uint32_t bit = 0; bit < params.bits; ++bit) {
    const auto& plan = marked.schedule.bit_plan(bit);
    const DurationUs d_before = bit_difference(plan, before);
    const DurationUs d_after = bit_difference(plan, after);
    if (wm.bit(bit) == 1) {
      improved += d_after > d_before;
    } else {
      improved += d_after < d_before;
    }
  }
  // Clipping can rob an occasional bit, but the overwhelming majority of
  // bit differences must move toward the embedded value.
  EXPECT_GE(improved, 20);
}

TEST(Embedder, RejectsWrongWatermarkLength) {
  WatermarkParams params;
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>(500, 0));
  const Embedder embedder(params, 1);
  EXPECT_THROW(embedder.embed(flow, Watermark::parse("101")),
               InvalidArgument);
}

TEST(Decoder, PositionalNeedsLongEnoughFlow) {
  WatermarkParams params;
  params.bits = 4;
  params.redundancy = 1;
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>(100, 0));
  const auto schedule = KeySchedule::create(params, 100, 9);
  const Flow shorter = Flow::from_timestamps(
      std::vector<TimeUs>(schedule.max_packet_index(), 0));
  EXPECT_FALSE(decode_positional(schedule, shorter).has_value());
}

TEST(Decoder, DecodeBitSignConvention) {
  EXPECT_EQ(decode_bit(1), 1);
  EXPECT_EQ(decode_bit(0), 0);   // ties decode as 0 (paper: D <= 0 -> 0)
  EXPECT_EQ(decode_bit(-1), 0);
}

// End-to-end robustness: the watermark survives bounded random-walk
// perturbation (this is the property the whole paper builds on).
TEST(Watermark, SurvivesBoundedPerturbation) {
  const traffic::InteractiveSessionModel model;
  WatermarkParams params;
  Rng rng(8);
  int detected = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const Flow flow = model.generate(1000, 0, 6000 + t);
    const Watermark wm = Watermark::random(params.bits, rng);
    const Embedder embedder(params, 7000 + t);
    const WatermarkedFlow marked = embedder.embed(flow, wm);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{7}),
                                              8000 + t);
    const auto decoded =
        decode_positional(marked.schedule, perturber.apply(marked.flow));
    ASSERT_TRUE(decoded.has_value());
    detected += decoded->hamming_distance(wm) <= 7;
  }
  EXPECT_GE(detected, kTrials * 8 / 10);
}

}  // namespace
}  // namespace sscor
