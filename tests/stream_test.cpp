// The incremental-vs-batch parity suite for the streaming engine.
//
// Property under test (the design invariant of src/sscor/stream/): for a
// randomized capture — watermarked flows under perturbation and chaff,
// decoys, adversarial flows from the fuzz generators, and packet loss —
// StreamEngine's verdicts equal the batch pipeline's, for any shard count
// and any thread count.  With early exits disabled every CorrelationResult
// byte matches; with them enabled the decisions still agree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sscor/correlation/correlator.hpp"
#include "sscor/experiment/stream_corpus.hpp"
#include "sscor/fuzz/generators.hpp"
#include "sscor/stream/packet_source.hpp"
#include "sscor/stream/stream_engine.hpp"
#include "sscor/util/error.hpp"

namespace sscor::stream {
namespace {

/// One randomized capture with its per-pair batch reference results.
struct ParityCase {
  std::vector<WatermarkedFlow> upstreams;
  std::vector<net::FiveTuple> tuples;
  std::vector<Flow> flows;  ///< suspicious flows, post-loss, per tuple
  std::vector<StreamPacket> packets;  ///< merged arrival stream
};

WatermarkParams parity_watermark() {
  WatermarkParams params;
  params.bits = 8;
  params.redundancy = 2;  // 32 pairs -> 64 relevant packets
  return params;
}

CorrelatorConfig parity_config() {
  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{4});
  config.hamming_threshold = 2;
  return config;
}

ParityCase make_parity_case(std::uint64_t seed) {
  experiment::StreamCorpusConfig corpus_config;
  corpus_config.watermarked_flows = 2;
  corpus_config.decoy_flows = 3;
  corpus_config.packets_per_flow = 150;
  corpus_config.chaff_rate = 2.0;
  corpus_config.seed = seed;
  corpus_config.watermark = parity_watermark();
  const experiment::StreamCorpus corpus =
      experiment::make_stream_corpus(corpus_config);

  ParityCase parity;
  parity.upstreams = corpus.upstreams;
  parity.tuples = corpus.tuples;

  // Packet loss: drop a deterministic ~11% of each suspicious flow.  The
  // batch reference is computed on the SAME lossy flows, so parity is
  // unaffected — the point is that the engine sees realistic gaps.
  for (std::size_t k = 0; k < corpus.downstream.size(); ++k) {
    std::vector<PacketRecord> kept;
    const auto packets = corpus.downstream[k].packets();
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if ((i + k) % 9 != 7) kept.push_back(packets[i]);
    }
    parity.flows.emplace_back(std::move(kept), corpus.tuples[k].to_string());
  }

  // Two adversarial flows from the fuzz generators: duplicate-timestamp
  // runs and micro-bursts, the shapes most likely to disturb incremental
  // window maintenance.
  Rng rng(mix_seeds(seed, 0xadf10e5ULL));
  for (std::size_t j = 0; j < 2; ++j) {
    fuzz::AdversarialFlowOptions options;
    options.min_packets = 64;
    options.max_packets = 96;
    options.duplicate_prob = 0.15;
    options.burst_prob = 0.15;
    Flow flow = fuzz::generate_adversarial_flow(rng, options);
    const net::FiveTuple tuple = experiment::stream_corpus_tuple(30 + j);
    flow.set_id(tuple.to_string());
    parity.tuples.push_back(tuple);
    parity.flows.push_back(std::move(flow));
  }

  for (std::size_t k = 0; k < parity.flows.size(); ++k) {
    for (const PacketRecord& packet : parity.flows[k].packets()) {
      parity.packets.push_back(StreamPacket{parity.tuples[k], packet});
    }
  }
  std::stable_sort(parity.packets.begin(), parity.packets.end(),
                   [](const StreamPacket& a, const StreamPacket& b) {
                     return a.packet.timestamp < b.packet.timestamp;
                   });
  return parity;
}

/// Batch reference: results[flow][upstream].
std::vector<std::vector<CorrelationResult>> batch_results(
    const ParityCase& parity, Algorithm algorithm) {
  const Correlator correlator(parity_config(), algorithm);
  std::vector<std::vector<CorrelationResult>> results(parity.flows.size());
  for (std::size_t k = 0; k < parity.flows.size(); ++k) {
    for (const WatermarkedFlow& upstream : parity.upstreams) {
      results[k].push_back(correlator.correlate(upstream, parity.flows[k]));
    }
  }
  return results;
}

std::vector<StreamVerdict> run_engine(const ParityCase& parity,
                                      StreamOptions options) {
  StreamEngine engine(parity.upstreams, parity_config(), std::move(options));
  for (const StreamPacket& packet : parity.packets) engine.ingest(packet);
  engine.finish();
  return engine.drain_verdicts();
}

void expect_identical_result(const CorrelationResult& got,
                             const CorrelationResult& want,
                             const std::string& label) {
  EXPECT_EQ(got.algorithm, want.algorithm) << label;
  EXPECT_EQ(got.correlated, want.correlated) << label;
  EXPECT_EQ(got.hamming, want.hamming) << label;
  EXPECT_EQ(got.best_watermark, want.best_watermark) << label;
  EXPECT_EQ(got.cost, want.cost) << label;
  EXPECT_EQ(got.matching_complete, want.matching_complete) << label;
  EXPECT_EQ(got.cost_bound_hit, want.cost_bound_hit) << label;
  EXPECT_EQ(got.interrupted, want.interrupted) << label;
  EXPECT_EQ(got.stop_reason, want.stop_reason) << label;
  EXPECT_EQ(got.degraded, want.degraded) << label;
}

std::map<net::FiveTuple, std::size_t> flow_index_of(const ParityCase& parity) {
  std::map<net::FiveTuple, std::size_t> index;
  for (std::size_t k = 0; k < parity.tuples.size(); ++k) {
    index[parity.tuples[k]] = k;
  }
  return index;
}

// With early exits off, every verdict's CorrelationResult must match the
// batch pipeline byte for byte — at shard counts 1, 2, and 8.
TEST(StreamParity, ByteIdenticalToBatchAcrossShardCounts) {
  for (const std::uint64_t seed : {1u, 2u}) {
    const ParityCase parity = make_parity_case(seed);
    const auto batch = batch_results(parity, Algorithm::kGreedyPlus);
    const auto index = flow_index_of(parity);

    std::vector<StreamVerdict> reference;  // the shards=1 run
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
      StreamOptions options;
      options.early_exit = false;
      options.table.shards = shards;
      options.batch_size = 97;  // deliberately not a divisor of anything
      const std::vector<StreamVerdict> verdicts = run_engine(parity, options);

      ASSERT_EQ(verdicts.size(),
                parity.flows.size() * parity.upstreams.size())
          << "seed " << seed << ", shards " << shards;
      for (const StreamVerdict& v : verdicts) {
        const std::string label = "seed " + std::to_string(seed) +
                                  ", shards " + std::to_string(shards) +
                                  ", flow " + v.tuple.to_string() +
                                  ", upstream " + std::to_string(v.upstream);
        const auto it = index.find(v.tuple);
        ASSERT_NE(it, index.end()) << label;
        const CorrelationResult& want = batch[it->second][v.upstream];
        expect_identical_result(v.result, want, label);
        EXPECT_EQ(v.kind, want.correlated ? VerdictKind::kPositive
                                          : VerdictKind::kNegative)
            << label;
        EXPECT_FALSE(v.early) << label;
        EXPECT_EQ(v.packets_seen, parity.flows[it->second].size()) << label;
      }

      // Verdict order — (flow first-arrival, upstream) — is also
      // shard-count invariant.
      if (reference.empty()) {
        reference = verdicts;
      } else {
        for (std::size_t i = 0; i < verdicts.size(); ++i) {
          EXPECT_EQ(verdicts[i].tuple, reference[i].tuple);
          EXPECT_EQ(verdicts[i].flow_seq, reference[i].flow_seq);
          EXPECT_EQ(verdicts[i].upstream, reference[i].upstream);
        }
      }
    }
  }
}

// At least one corpus pair must actually correlate, or the suite proves
// parity on rejections only.
TEST(StreamParity, CorpusContainsPositives) {
  const ParityCase parity = make_parity_case(1);
  const auto batch = batch_results(parity, Algorithm::kGreedyPlus);
  std::size_t positives = 0;
  for (std::size_t k = 0; k < parity.flows.size(); ++k) {
    for (const CorrelationResult& result : batch[k]) {
      if (result.correlated) ++positives;
    }
  }
  EXPECT_GE(positives, 2u) << "watermarked carriers should decode";
}

// With early exits on (the deployment default), decisions still agree
// with batch for every pair, and early rejections freeze their cost at
// the prefix inspected.
TEST(StreamParity, EarlyExitDecisionsAgreeWithBatch) {
  for (const std::uint64_t seed : {1u, 2u}) {
    const ParityCase parity = make_parity_case(seed);
    const auto batch = batch_results(parity, Algorithm::kGreedyPlus);
    const auto index = flow_index_of(parity);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      StreamOptions options;
      options.early_exit = true;
      options.table.shards = shards;
      const std::vector<StreamVerdict> verdicts = run_engine(parity, options);

      ASSERT_EQ(verdicts.size(),
                parity.flows.size() * parity.upstreams.size());
      std::size_t early = 0;
      for (const StreamVerdict& v : verdicts) {
        const std::string label = "seed " + std::to_string(seed) +
                                  ", shards " + std::to_string(shards) +
                                  ", flow " + v.tuple.to_string() +
                                  ", upstream " + std::to_string(v.upstream);
        const CorrelationResult& want = batch[index.at(v.tuple)][v.upstream];
        EXPECT_EQ(v.result.correlated, want.correlated) << label;
        EXPECT_EQ(v.kind, want.correlated ? VerdictKind::kPositive
                                          : VerdictKind::kNegative)
            << label;
        if (v.early) {
          ++early;
          EXPECT_FALSE(v.result.correlated) << label;
          EXPECT_EQ(v.result.cost, v.packets_seen) << label;
        } else {
          expect_identical_result(v.result, want, label);
        }
      }
      EXPECT_GT(early, 0u)
          << "no pair rejected early; the corpus should contain some";
    }
  }
}

// Worker-thread count must never affect verdicts — byte for byte.
TEST(StreamParity, ThreadCountNeverAffectsVerdicts) {
  const ParityCase parity = make_parity_case(3);

  StreamOptions serial;
  serial.table.shards = 8;
  serial.threads = 1;
  const std::vector<StreamVerdict> golden = run_engine(parity, serial);

  StreamOptions threaded = serial;
  threaded.threads = 4;
  const std::vector<StreamVerdict> verdicts = run_engine(parity, threaded);

  ASSERT_EQ(verdicts.size(), golden.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const std::string label = "verdict " + std::to_string(i);
    EXPECT_EQ(verdicts[i].tuple, golden[i].tuple) << label;
    EXPECT_EQ(verdicts[i].flow_seq, golden[i].flow_seq) << label;
    EXPECT_EQ(verdicts[i].upstream, golden[i].upstream) << label;
    EXPECT_EQ(verdicts[i].kind, golden[i].kind) << label;
    EXPECT_EQ(verdicts[i].early, golden[i].early) << label;
    expect_identical_result(verdicts[i].result, golden[i].result, label);
  }
}

// ---------------------------------------------------------------------------
// The text feed source.

TEST(FlowTextSource, ParsesFeedAndMapsTokensDeterministically) {
  std::istringstream in(
      "# sscor-stream v1\n"
      "\n"
      "alpha 1000 64 0\n"
      "# a comment between packets\n"
      "beta 1500 128 1\n"
      "alpha 2000 64 0\n");
  FlowTextStreamSource source(in);

  const auto p1 = source.next();
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->tuple, FlowTextStreamSource::tuple_for_token("alpha"));
  EXPECT_EQ(p1->packet.timestamp, 1000);
  EXPECT_EQ(p1->packet.size, 64u);
  EXPECT_FALSE(p1->packet.is_chaff);

  const auto p2 = source.next();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->tuple, FlowTextStreamSource::tuple_for_token("beta"));
  EXPECT_NE(p2->tuple, p1->tuple);
  EXPECT_TRUE(p2->packet.is_chaff);

  const auto p3 = source.next();
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->tuple, p1->tuple) << "equal tokens must map to one tuple";
  EXPECT_FALSE(source.next().has_value());
}

TEST(FlowTextSource, RejectsBadHeaderAndMalformedLines) {
  std::istringstream bad_header("not a header\nalpha 1 64 0\n");
  EXPECT_THROW(FlowTextStreamSource{bad_header}, IoError);

  std::istringstream bad_line("# sscor-stream v1\nalpha not-a-number 64 0\n");
  FlowTextStreamSource source(bad_line);
  EXPECT_THROW(source.next(), IoError);
}

// Round-trip: serialise a parity case as a text feed, stream it back in,
// and check the engine reaches the same decisions as direct ingestion
// (tuples differ — they derive from tokens — but per-flow results match).
TEST(FlowTextSource, FeedRoundTripMatchesDirectIngestion) {
  const ParityCase parity = make_parity_case(1);

  StreamOptions options;
  options.early_exit = false;
  const std::vector<StreamVerdict> direct = run_engine(parity, options);

  // Token = flow index in the parity case, so token order is tuple order.
  const auto index = flow_index_of(parity);
  std::ostringstream feed;
  feed << "# sscor-stream v1\n";
  for (const StreamPacket& packet : parity.packets) {
    feed << "f" << index.at(packet.tuple) << ' ' << packet.packet.timestamp
         << ' ' << packet.packet.size << ' ' << (packet.packet.is_chaff ? 1 : 0)
         << '\n';
  }

  std::istringstream in(feed.str());
  FlowTextStreamSource source(in);
  StreamEngine engine(parity.upstreams, parity_config(), options);
  while (const auto packet = source.next()) engine.ingest(*packet);
  engine.finish();
  const std::vector<StreamVerdict> replayed = engine.drain_verdicts();

  ASSERT_EQ(replayed.size(), direct.size());
  std::map<std::pair<std::size_t, std::size_t>, const StreamVerdict*>
      direct_by_pair;
  for (const StreamVerdict& v : direct) {
    direct_by_pair[{index.at(v.tuple), v.upstream}] = &v;
  }
  for (const StreamVerdict& v : replayed) {
    // Recover the flow index from the token-derived tuple.
    std::size_t flow = parity.tuples.size();
    for (std::size_t k = 0; k < parity.tuples.size(); ++k) {
      if (FlowTextStreamSource::tuple_for_token("f" + std::to_string(k)) ==
          v.tuple) {
        flow = k;
        break;
      }
    }
    ASSERT_LT(flow, parity.tuples.size());
    const StreamVerdict* want = direct_by_pair.at({flow, v.upstream});
    EXPECT_EQ(v.kind, want->kind);
    EXPECT_EQ(v.flow_seq, want->flow_seq);
    expect_identical_result(v.result, want->result,
                            "flow " + std::to_string(flow));
  }
}

}  // namespace
}  // namespace sscor::stream
