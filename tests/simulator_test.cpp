// Tests for the stepping-stone chain simulator and its end-to-end use
// with the correlator.

#include <gtest/gtest.h>

#include "sscor/correlation/correlator.hpp"
#include "sscor/simulator/chain_simulator.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/util/error.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor::sim {
namespace {

SteppingStoneChain make_chain(std::uint64_t seed, int hops,
                              double chaff_rate) {
  SteppingStoneChain chain(seed);
  for (int h = 0; h < hops; ++h) {
    LinkParams link;
    link.latency = millis(15);
    link.jitter = millis(30);
    RelayParams relay;
    relay.max_delay = seconds(std::int64_t{1});
    relay.chaff_rate = chaff_rate;
    chain.add_hop(link, relay);
  }
  LinkParams last;
  last.latency = millis(5);
  last.jitter = millis(10);
  chain.set_final_link(last);
  return chain;
}

TEST(ChainSimulator, TraceShapeAndDeterminism) {
  const traffic::InteractiveSessionModel model;
  const Flow origin = model.generate(400, 0, 3);
  const auto chain = make_chain(42, 3, 1.0);
  const auto trace = chain.run(origin);
  ASSERT_EQ(trace.links.size(), 4u);  // 3 hops + final link

  // Same seed/run -> identical observation; different run id differs.
  const auto again = chain.run(origin);
  for (std::size_t k = 0; k < trace.links.size(); ++k) {
    EXPECT_EQ(trace.links[k].timestamps(), again.links[k].timestamps());
  }
  const auto other_run = chain.run(origin, 1);
  EXPECT_NE(trace.links.back().timestamps(),
            other_run.links.back().timestamps());
}

TEST(ChainSimulator, DelaysBoundedByBudget) {
  const traffic::InteractiveSessionModel model;
  const Flow origin = model.generate(500, 0, 7);
  const auto chain = make_chain(43, 3, 1.5);
  const auto trace = chain.run(origin);

  for (std::size_t from = 0; from < trace.links.size(); ++from) {
    for (std::size_t to = from + 1; to < trace.links.size(); ++to) {
      const DurationUs budget = chain.delay_budget(from, to);
      // Real packets keep their relative order and bounded delay between
      // any two monitoring points.
      std::vector<TimeUs> from_real;
      std::vector<TimeUs> to_real;
      for (const auto& p : trace.links[from].packets()) {
        if (!p.is_chaff) from_real.push_back(p.timestamp);
      }
      for (const auto& p : trace.links[to].packets()) {
        if (!p.is_chaff) to_real.push_back(p.timestamp);
      }
      ASSERT_EQ(from_real.size(), to_real.size());
      for (std::size_t i = 0; i < from_real.size(); ++i) {
        const DurationUs delay = to_real[i] - from_real[i];
        EXPECT_GE(delay, 0) << "packet travelled back in time";
        EXPECT_LE(delay, budget)
            << "links " << from << "->" << to << " packet " << i;
      }
    }
  }
}

TEST(ChainSimulator, ChaffAccumulatesHopByHop) {
  const traffic::InteractiveSessionModel model;
  const Flow origin = model.generate(400, 0, 11);
  const auto chain = make_chain(44, 4, 2.0);
  const auto trace = chain.run(origin);
  for (std::size_t k = 1; k < trace.links.size(); ++k) {
    EXPECT_GT(trace.links[k].chaff_count(),
              trace.links[k - 1].chaff_count())
        << "hop " << k;
  }
  EXPECT_EQ(trace.links[0].chaff_count(), 0u);
}

TEST(ChainSimulator, LossyLinkDropsPackets) {
  SteppingStoneChain chain(45);
  LinkParams lossy;
  lossy.loss = 0.1;
  chain.add_hop(lossy, RelayParams{});
  const traffic::InteractiveSessionModel model;
  const Flow origin = model.generate(1000, 0, 13);
  const auto trace = chain.run(origin);
  EXPECT_LT(trace.links[0].size(), origin.size());
  EXPECT_NEAR(static_cast<double>(trace.links[0].size()), 900.0, 60.0);
}

TEST(ChainSimulator, Validation) {
  SteppingStoneChain chain(1);
  LinkParams bad;
  bad.loss = 1.0;
  EXPECT_THROW(chain.add_hop(bad, RelayParams{}), InvalidArgument);
  EXPECT_THROW(chain.run(Flow{}), InvalidArgument);  // no hops yet
  chain.add_hop(LinkParams{}, RelayParams{});
  EXPECT_THROW(chain.delay_budget(2, 1), InvalidArgument);
}

// The headline scenario: watermark at the first link, detect at the last.
TEST(ChainSimulator, EndToEndDetectionAcrossTheChain) {
  const traffic::InteractiveSessionModel model;
  int detected = 0;
  int false_positives = 0;
  constexpr int kTrials = 6;
  for (int t = 0; t < kTrials; ++t) {
    const Flow session = model.generate(1000, 0, 100 + t);
    Rng rng(200 + t);
    const Embedder embedder(WatermarkParams{}, 300 + t);
    const auto marked =
        embedder.embed(session, Watermark::random(24, rng));

    const auto chain = make_chain(400 + t, 3, 1.0);
    const auto trace = chain.run(marked.flow);
    // The upstream monitor sits on link 0; rebuild the handle around what
    // it actually observed.
    const WatermarkedFlow observed{trace.links.front(), marked.schedule,
                                   marked.watermark};
    CorrelatorConfig config;
    config.max_delay =
        chain.delay_budget(0, chain.hops());
    const Correlator correlator(config, Algorithm::kGreedyPlus);
    detected +=
        correlator.correlate(observed, trace.links.back()).correlated;

    // A decoy session through an identical chain must not correlate.
    const Flow decoy = model.generate(1000, 0, 500 + t);
    const auto decoy_trace = make_chain(600 + t, 3, 1.0).run(decoy);
    false_positives +=
        correlator.correlate(observed, decoy_trace.links.back()).correlated;
  }
  EXPECT_GE(detected, kTrials - 1);
  EXPECT_LE(false_positives, 1);
}

}  // namespace
}  // namespace sscor::sim
