// Tests for the pcapng reader: hand-built fixtures in both byte orders,
// timestamp-resolution handling, block skipping, malformed input, and
// format auto-detection; plus randomized robustness ("fuzz-lite") checks
// for every parser in the capture path.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sscor/flow/flow_io.hpp"
#include "sscor/net/headers.hpp"
#include "sscor/pcap/pcap_reader.hpp"
#include "sscor/pcap/pcap_writer.hpp"
#include "sscor/pcap/pcapng_reader.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/rng.hpp"
#include "sscor/watermark/key_file.hpp"

namespace sscor::pcap {
namespace {

/// Incremental pcapng byte-stream builder with selectable endianness.
class PcapngBuilder {
 public:
  explicit PcapngBuilder(bool big_endian) : big_endian_(big_endian) {}

  PcapngBuilder& section_header() {
    std::string body;
    body += u32(kPcapngByteOrderMagic);
    body += u16(1);  // major
    body += u16(0);  // minor
    body += std::string(8, '\xff');  // section length unspecified
    block(kPcapngSectionHeader, body);
    return *this;
  }

  /// `tsresol`: pcapng if_tsresol option byte; 0xff = omit the option.
  PcapngBuilder& interface(std::uint16_t link_type, std::uint8_t tsresol) {
    std::string body;
    body += u16(link_type);
    body += u16(0);       // reserved
    body += u32(65535);   // snaplen
    if (tsresol != 0xff) {
      body += u16(9);  // if_tsresol
      body += u16(1);
      body += std::string(1, static_cast<char>(tsresol));
      body += std::string(3, '\0');  // padding
      body += u16(0);                // opt_endofopt
      body += u16(0);
    }
    block(kPcapngInterfaceDescription, body);
    return *this;
  }

  PcapngBuilder& enhanced_packet(std::uint32_t interface_id,
                                 std::uint64_t ticks,
                                 const std::string& data) {
    std::string body;
    body += u32(interface_id);
    body += u32(static_cast<std::uint32_t>(ticks >> 32));
    body += u32(static_cast<std::uint32_t>(ticks));
    body += u32(static_cast<std::uint32_t>(data.size()));
    body += u32(static_cast<std::uint32_t>(data.size()));
    body += data;
    body += std::string((4 - data.size() % 4) % 4, '\0');
    block(kPcapngEnhancedPacket, body);
    return *this;
  }

  PcapngBuilder& unknown_block() {
    block(0x0bad0000, std::string(8, '\x55'));
    return *this;
  }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string u16(std::uint16_t v) {
    if (big_endian_) {
      return {static_cast<char>(v >> 8), static_cast<char>(v)};
    }
    return {static_cast<char>(v), static_cast<char>(v >> 8)};
  }
  std::string u32(std::uint32_t v) {
    if (big_endian_) {
      return {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
              static_cast<char>(v >> 8), static_cast<char>(v)};
    }
    return {static_cast<char>(v), static_cast<char>(v >> 8),
            static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  }
  void block(std::uint32_t type, const std::string& body) {
    const auto total = static_cast<std::uint32_t>(12 + body.size());
    bytes_ += u32(type);
    bytes_ += u32(total);
    bytes_ += body;
    bytes_ += u32(total);
  }

  bool big_endian_;
  std::string bytes_;
};

TEST(Pcapng, ReadsMicrosecondPackets) {
  for (const bool big_endian : {false, true}) {
    PcapngBuilder builder(big_endian);
    builder.section_header()
        .interface(101, 6)  // raw IP, 10^-6 resolution
        .enhanced_packet(0, 1'500'000, "abcd")
        .unknown_block()
        .enhanced_packet(0, 2'750'000, "xy");
    std::stringstream stream(builder.bytes());
    PcapngReader reader(stream);

    const auto p1 = reader.next();
    ASSERT_TRUE(p1.has_value()) << "big_endian=" << big_endian;
    EXPECT_EQ(p1->timestamp, 1'500'000);
    EXPECT_EQ(p1->data, (std::vector<std::uint8_t>{'a', 'b', 'c', 'd'}));
    EXPECT_EQ(reader.last_link_type(), LinkType::kRawIp);

    const auto p2 = reader.next();
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p2->timestamp, 2'750'000);
    EXPECT_EQ(p2->data.size(), 2u);
    EXPECT_FALSE(reader.next().has_value());
  }
}

TEST(Pcapng, NanosecondAndPowerOfTwoResolutions) {
  {
    PcapngBuilder builder(false);
    builder.section_header()
        .interface(1, 9)  // nanoseconds
        .enhanced_packet(0, 1'500'000'000ULL, "a");
    std::stringstream stream(builder.bytes());
    PcapngReader reader(stream);
    const auto p = reader.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->timestamp, 1'500'000);
    EXPECT_EQ(reader.last_link_type(), LinkType::kEthernet);
  }
  {
    PcapngBuilder builder(false);
    builder.section_header()
        .interface(101, 0x80 | 10)  // 2^10 = 1024 ticks per second
        .enhanced_packet(0, 1536, "a");  // 1.5 seconds
    std::stringstream stream(builder.bytes());
    PcapngReader reader(stream);
    const auto p = reader.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->timestamp, 1'500'000);
  }
  {
    PcapngBuilder builder(false);
    builder.section_header()
        .interface(101, 0xff)  // no if_tsresol: default microseconds
        .enhanced_packet(0, 42, "a");
    std::stringstream stream(builder.bytes());
    PcapngReader reader(stream);
    const auto p = reader.next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->timestamp, 42);
  }
}

TEST(Pcapng, RejectsMalformedInput) {
  {
    std::stringstream s("\x0a\x0d\x0d\x0a\x04\x00");  // truncated header
    PcapngReader reader(s);
    EXPECT_THROW(reader.next(), IoError);
  }
  {
    // Packet block before any section header: a malformed file, so IoError
    // (not the InvalidArgument caller-contract error it once threw).
    PcapngBuilder builder(false);
    builder.enhanced_packet(0, 0, "a");
    std::stringstream s(builder.bytes());
    PcapngReader reader(s);
    EXPECT_THROW(reader.next(), IoError);
  }
  {
    // if_tsresol claiming 2^100 ticks/second: the shift would be undefined.
    PcapngBuilder builder(false);
    builder.section_header().interface(101, 0x80 | 100);
    std::stringstream s(builder.bytes());
    PcapngReader reader(s);
    EXPECT_THROW(reader.next(), IoError);
  }
  {
    // All-ones tick counter at microsecond resolution: the seconds value
    // cannot be expressed on the int64 microsecond clock (the conversion
    // used to overflow — UB).
    PcapngBuilder builder(false);
    builder.section_header().interface(101, 6).enhanced_packet(
        0, 0xffffffffffffffffULL, "a");
    std::stringstream s(builder.bytes());
    PcapngReader reader(s);
    EXPECT_THROW(reader.next(), IoError);
  }
  {
    // Enhanced packet referencing an interface that was never described.
    PcapngBuilder builder(false);
    builder.section_header().enhanced_packet(3, 0, "a");
    std::stringstream s(builder.bytes());
    PcapngReader reader(s);
    EXPECT_THROW(reader.next(), IoError);
  }
  EXPECT_THROW(PcapngReader("/nonexistent/capture.pcapng"), IoError);
}

TEST(Pcapng, AutoDetectionDispatchesBothFormats) {
  const std::string ng_path = testing::TempDir() + "/sscor_auto.pcapng";
  {
    PcapngBuilder builder(false);
    builder.section_header().interface(101, 6).enhanced_packet(0, 7, "zz");
    std::ofstream out(ng_path, std::ios::binary);
    out << builder.bytes();
  }
  const auto ng = read_capture_auto(ng_path);
  ASSERT_EQ(ng.records.size(), 1u);
  EXPECT_EQ(ng.records[0].timestamp, 7);
  EXPECT_EQ(ng.link_type, LinkType::kRawIp);

  const std::string classic_path = testing::TempDir() + "/sscor_auto.pcap";
  {
    PcapWriter writer(classic_path, LinkType::kRawIp);
    Record r;
    r.timestamp = 9;
    r.data = {1, 2};
    r.original_length = 2;
    writer.write(r);
  }
  const auto classic = read_capture_auto(classic_path);
  ASSERT_EQ(classic.records.size(), 1u);
  EXPECT_EQ(classic.records[0].timestamp, 9);
}

// --------------------------------------------------------- fuzz-lite ---
// Parsers facing untrusted bytes must fail cleanly (throw IoError /
// return nullopt), never crash or loop.

TEST(FuzzLite, RandomBytesIntoEveryParser) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t size = rng.uniform_u64(512);
    std::string bytes(size, '\0');
    for (auto& c : bytes) {
      c = static_cast<char>(rng.uniform_u64(256));
    }
    // TCP/IP header parser: returns nullopt or a packet, never throws.
    EXPECT_NO_THROW({
      (void)net::parse_tcp_packet(std::vector<std::uint8_t>(bytes.begin(),
                                                            bytes.end()));
    });
    // Capture readers: either parse or throw IoError.
    try {
      std::stringstream s(bytes);
      PcapReader reader(s);
      while (reader.next()) {
      }
    } catch (const IoError&) {
    }
    try {
      std::stringstream s(bytes);
      PcapngReader reader(s);
      while (reader.next()) {
      }
    } catch (const Error&) {
    }
    // Text formats.
    try {
      std::stringstream s(bytes);
      (void)read_flow_text(s);
    } catch (const IoError&) {
    }
    try {
      std::stringstream s(bytes);
      (void)read_secret_text(s);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzLite, MutatedValidCaptures) {
  // Take a valid pcapng byte stream and flip random bytes; the reader must
  // either parse or throw, never hang or crash.
  PcapngBuilder builder(false);
  builder.section_header().interface(101, 6);
  for (int i = 0; i < 10; ++i) {
    builder.enhanced_packet(0, 1000 * i, "payload");
  }
  const std::string original = builder.bytes();
  Rng rng(0xabcd);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = original;
    const int flips = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_u64(mutated.size())] =
          static_cast<char>(rng.uniform_u64(256));
    }
    try {
      std::stringstream s(mutated);
      PcapngReader reader(s);
      int packets = 0;
      while (reader.next() && packets < 100) ++packets;
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace sscor::pcap
