// Tests for the resilience layer: cooperative cancellation (tokens,
// deadlines, probes), the graceful-degradation ladder, crash-safe sweep
// checkpointing (including a real fork+SIGKILL kill-and-resume), and the
// metrics that make interrupted decodes observable.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sscor/correlation/correlator.hpp"
#include "sscor/correlation/resilient.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/experiment/checkpoint.hpp"
#include "sscor/experiment/sweep.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/cancellation.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

// ------------------------------------------------- token and deadline ---

TEST(CancellationToken, FirstReasonWinsAndReset) {
  CancellationToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kNone);
  token.cancel(StopReason::kDeadline);
  token.cancel(StopReason::kCostBudget);  // later reasons are no-ops
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
  token.reset();
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kNone);
}

TEST(CancellationToken, StopReasonNames) {
  EXPECT_EQ(to_string(StopReason::kNone), "none");
  EXPECT_EQ(to_string(StopReason::kCancelled), "cancelled");
  EXPECT_EQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_EQ(to_string(StopReason::kCostBudget), "cost-budget");
}

TEST(Deadline, ArmedAndExpiry) {
  const Deadline unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.expired());

  const Deadline epoch = Deadline::at(std::chrono::steady_clock::time_point{});
  EXPECT_TRUE(epoch.armed());
  EXPECT_TRUE(epoch.expired());

  const Deadline generous = Deadline::after(seconds(std::int64_t{3600}));
  EXPECT_TRUE(generous.armed());
  EXPECT_FALSE(generous.expired());
}

TEST(CancelProbe, DisabledProbeNeverStops) {
  CancelProbe probe;  // no budget
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(probe.should_stop(static_cast<std::uint64_t>(i) << 20));
  }
  EXPECT_FALSE(probe.stopped());

  DecodeBudget empty;
  EXPECT_FALSE(empty.enabled());
  CancelProbe probe2(empty);
  EXPECT_FALSE(probe2.should_stop(1'000'000'000));
}

TEST(CancelProbe, CostBudgetTripsAndLatches) {
  DecodeBudget budget;
  budget.max_cost = 100;
  CancelProbe probe(budget);
  EXPECT_FALSE(probe.should_stop(50));
  EXPECT_FALSE(probe.should_stop(99));
  EXPECT_TRUE(probe.should_stop(100));  // spent budget == bound trips
  EXPECT_EQ(probe.reason(), StopReason::kCostBudget);
  // Latched: the verdict survives the cost going "back down".
  EXPECT_TRUE(probe.should_stop(0));
  EXPECT_TRUE(probe.stopped());
}

TEST(CancelProbe, TokenCancelStops) {
  CancellationToken token;
  DecodeBudget budget;
  budget.token = &token;
  CancelProbe probe(budget);
  EXPECT_FALSE(probe.should_stop());
  token.cancel();
  EXPECT_TRUE(probe.should_stop());
  EXPECT_EQ(probe.reason(), StopReason::kCancelled);
}

TEST(CancelProbe, ExpiredDeadlineStopsOnFirstProbe) {
  DecodeBudget budget;
  budget.deadline = Deadline::at(std::chrono::steady_clock::time_point{});
  CancelProbe probe(budget);
  EXPECT_TRUE(probe.should_stop());
  EXPECT_EQ(probe.reason(), StopReason::kDeadline);
}

TEST(CancelProbe, TripAfterProbesIsExact) {
  CancellationToken token;
  token.trip_after_probes(5);
  DecodeBudget budget;
  budget.token = &token;
  CancelProbe probe(budget);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(probe.should_stop()) << "probe " << i;
  }
  EXPECT_TRUE(probe.should_stop());
  EXPECT_EQ(probe.reason(), StopReason::kCancelled);
}

// ------------------------------------------- interrupted decodes ---

struct Scenario {
  WatermarkedFlow marked;
  Flow downstream;
  CorrelatorConfig config;
};

Scenario make_scenario(std::uint64_t seed, double chaff_pps = 2.0) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(900, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Embedder embedder(WatermarkParams{}, mix_seeds(seed, 3));
  Scenario s;
  s.marked = embedder.embed(flow, Watermark::random(24, rng));
  Flow down = traffic::UniformPerturber(millis(800), mix_seeds(seed, 4))
                  .apply(s.marked.flow);
  s.downstream =
      traffic::PoissonChaffInjector(chaff_pps, mix_seeds(seed, 5)).apply(down);
  s.config.max_delay = seconds(std::int64_t{2});
  return s;
}

const Algorithm kAllAlgorithms[] = {Algorithm::kBruteForce,
                                    Algorithm::kGreedyStar,
                                    Algorithm::kGreedyPlus, Algorithm::kGreedy};

void expect_identical(const CorrelationResult& a, const CorrelationResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.correlated, b.correlated) << label;
  EXPECT_EQ(a.hamming, b.hamming) << label;
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.matching_complete, b.matching_complete) << label;
  EXPECT_EQ(a.cost_bound_hit, b.cost_bound_hit) << label;
  EXPECT_EQ(a.interrupted, b.interrupted) << label;
  EXPECT_TRUE(a.best_watermark == b.best_watermark) << label;
}

TEST(InterruptedDecode, GenerousBudgetIsByteIdentical) {
  const Scenario s = make_scenario(11);
  for (const Algorithm algo : kAllAlgorithms) {
    const CorrelationResult plain =
        Correlator(s.config, algo).correlate(s.marked, s.downstream);

    CancellationToken token;
    CorrelatorConfig budgeted = s.config;
    budgeted.budget.token = &token;
    budgeted.budget.max_cost = ~std::uint64_t{0} >> 1;
    budgeted.budget.deadline = Deadline::after(seconds(std::int64_t{3600}));
    const CorrelationResult under_budget =
        Correlator(budgeted, algo).correlate(s.marked, s.downstream);

    expect_identical(plain, under_budget, to_string(algo));
    EXPECT_FALSE(under_budget.interrupted) << to_string(algo);
    EXPECT_EQ(under_budget.stop_reason, StopReason::kNone) << to_string(algo);
  }
}

TEST(InterruptedDecode, EveryAlgorithmStopsCleanlyOnCancel) {
  const Scenario s = make_scenario(12);
  for (const Algorithm algo : kAllAlgorithms) {
    for (const std::int64_t trip : {1, 7, 100, 2000}) {
      CancellationToken token;
      token.trip_after_probes(trip);
      CorrelatorConfig config = s.config;
      config.budget.token = &token;
      const CorrelationResult r =
          Correlator(config, algo).correlate(s.marked, s.downstream);
      if (!r.interrupted) continue;  // decode finished under `trip` probes
      EXPECT_EQ(r.stop_reason, StopReason::kCancelled)
          << to_string(algo) << " trip " << trip;
      if (r.correlated) {
        EXPECT_LE(r.hamming, config.hamming_threshold)
            << to_string(algo) << " returned a torn correlated verdict";
      }
    }
  }
}

TEST(InterruptedDecode, CostBudgetInterruptsExpensiveAlgorithms) {
  const Scenario s = make_scenario(13);
  // The brute-force search on a chaffed 900-packet flow costs far more
  // than 500 accesses; a tiny budget must interrupt, not hang or crash.
  for (const Algorithm algo :
       {Algorithm::kBruteForce, Algorithm::kGreedyStar,
        Algorithm::kGreedyPlus}) {
    CorrelatorConfig config = s.config;
    config.budget.max_cost = 500;
    const CorrelationResult r =
        Correlator(config, algo).correlate(s.marked, s.downstream);
    ASSERT_TRUE(r.interrupted) << to_string(algo);
    EXPECT_EQ(r.stop_reason, StopReason::kCostBudget) << to_string(algo);
  }
}

TEST(InterruptedDecode, RobustModeHonoursBudget) {
  const Scenario s = make_scenario(14);
  CorrelatorConfig config = s.config;
  config.budget.max_cost = 500;
  const CorrelationResult r =
      run_greedy_plus_robust(s.marked.schedule, s.marked.watermark,
                             s.marked.flow, s.downstream, config);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.stop_reason, StopReason::kCostBudget);

  CorrelatorConfig clean = s.config;
  const CorrelationResult full =
      run_greedy_plus_robust(s.marked.schedule, s.marked.watermark,
                             s.marked.flow, s.downstream, clean);
  EXPECT_FALSE(full.interrupted);
}

TEST(InterruptedDecode, MetricsCountInterruptions) {
  const Scenario s = make_scenario(15);
  const std::uint64_t before = metrics::counter("correlate.interrupted").value();
  const std::uint64_t cancelled_before =
      metrics::counter("correlate.cancelled").value();
  CancellationToken token;
  token.cancel();  // cancelled before the decode even starts
  CorrelatorConfig config = s.config;
  config.budget.token = &token;
  const CorrelationResult r =
      Correlator(config, Algorithm::kGreedyPlus).correlate(s.marked,
                                                           s.downstream);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(metrics::counter("correlate.interrupted").value(), before + 1);
  EXPECT_EQ(metrics::counter("correlate.cancelled").value(),
            cancelled_before + 1);
}

// --------------------------------------------------- fallback ladder ---

TEST(ResilientLadder, LadderOrderIsSuffixOfTierOrder) {
  using A = Algorithm;
  EXPECT_EQ(fallback_ladder(A::kBruteForce),
            (std::vector<A>{A::kBruteForce, A::kGreedyStar, A::kGreedyPlus,
                            A::kGreedy}));
  EXPECT_EQ(fallback_ladder(A::kGreedyStar),
            (std::vector<A>{A::kGreedyStar, A::kGreedyPlus, A::kGreedy}));
  EXPECT_EQ(fallback_ladder(A::kGreedyPlus),
            (std::vector<A>{A::kGreedyPlus, A::kGreedy}));
  EXPECT_EQ(fallback_ladder(A::kGreedy), (std::vector<A>{A::kGreedy}));
}

TEST(ResilientLadder, DisabledOptionsCollapseToPlainRun) {
  const Scenario s = make_scenario(21);
  for (const Algorithm algo : kAllAlgorithms) {
    const CorrelationResult plain =
        Correlator(s.config, algo).correlate(s.marked, s.downstream);
    const CorrelationResult resilient =
        ResilientCorrelator(s.config, algo).correlate(s.marked, s.downstream);
    expect_identical(plain, resilient, to_string(algo));
    EXPECT_FALSE(resilient.degraded);
  }
}

TEST(ResilientLadder, CostBudgetDegradesDownTheLadder) {
  const Scenario s = make_scenario(22);
  ResilientOptions options;
  options.max_cost_per_attempt = 500;  // interrupts everything but Greedy
  const ResilientCorrelator resilient(s.config, Algorithm::kBruteForce,
                                      options);
  const CorrelationResult r = resilient.correlate(s.marked, s.downstream);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.algorithm, Algorithm::kGreedy);  // final tier, budget lifted
  EXPECT_FALSE(r.interrupted);

  // The degraded result equals Greedy run directly with no budget (the
  // final tier's caps are removed so it always completes).
  const CorrelationResult direct =
      Correlator(s.config, Algorithm::kGreedy).correlate(s.marked,
                                                         s.downstream);
  expect_identical(direct, r, "degraded-to-greedy");
}

TEST(ResilientLadder, GenerousBudgetNeverDegrades) {
  const Scenario s = make_scenario(23);
  ResilientOptions options;
  options.max_cost_per_attempt = ~std::uint64_t{0} >> 1;
  const ResilientCorrelator resilient(s.config, Algorithm::kGreedyPlus,
                                      options);
  const CorrelationResult r = resilient.correlate(s.marked, s.downstream);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.algorithm, Algorithm::kGreedyPlus);
  const CorrelationResult plain =
      Correlator(s.config, Algorithm::kGreedyPlus)
          .correlate(s.marked, s.downstream);
  expect_identical(plain, r, "generous-budget");
}

TEST(ResilientLadder, ExplicitCancelNeverFallsBack) {
  const Scenario s = make_scenario(24);
  CancellationToken token;
  token.cancel();  // the caller said stop — degrading would defy them
  ResilientOptions options;
  options.token = &token;
  options.max_cost_per_attempt = 500;
  const ResilientCorrelator resilient(s.config, Algorithm::kBruteForce,
                                      options);
  const CorrelationResult r = resilient.correlate(s.marked, s.downstream);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(r.algorithm, Algorithm::kBruteForce);
  EXPECT_FALSE(r.degraded);
}

TEST(ResilientLadder, RejectsBudgetSmuggledThroughConfig) {
  CorrelatorConfig config;
  CancellationToken token;
  config.budget.token = &token;
  EXPECT_THROW(ResilientCorrelator(config, Algorithm::kGreedy),
               InvalidArgument);
}

TEST(ResilientLadder, DegradationIsObservableInMetrics) {
  const Scenario s = make_scenario(25);
  const std::uint64_t degraded_before =
      metrics::counter("resilient.degraded").value();
  ResilientOptions options;
  options.max_cost_per_attempt = 500;
  const ResilientCorrelator resilient(s.config, Algorithm::kGreedyPlus,
                                      options);
  const CorrelationResult r = resilient.correlate(s.marked, s.downstream);
  ASSERT_TRUE(r.degraded);
  EXPECT_EQ(metrics::counter("resilient.degraded").value(),
            degraded_before + 1);
}

// ------------------------------------------------------- checkpointing ---

namespace fs = std::filesystem;
using experiment::CheckpointJournal;
using experiment::load_checkpoint;

std::string temp_path(const std::string& stem) {
  return (fs::temp_directory_path() / (stem + "-" + std::to_string(getpid()) +
                                       ".jsonl"))
      .string();
}

TEST(Checkpoint, Crc32KnownVector) {
  EXPECT_EQ(experiment::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(experiment::crc32(""), 0x00000000u);
}

TEST(Checkpoint, JournalRoundTrip) {
  const std::string path = temp_path("ckpt-roundtrip");
  {
    auto journal = CheckpointJournal::create(
        path, experiment::encode_checkpoint_header(0xabcdef12u, 3, 2));
    journal.append(experiment::encode_checkpoint_row(0, {"0.0", "1.0000"}));
    journal.append(
        experiment::encode_checkpoint_row(2, {"5.0", "va\"l\\ue"}));
    EXPECT_EQ(journal.appended(), 2u);
  }
  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.dropped_lines, 0u);
  std::uint64_t fingerprint = 0;
  std::size_t points = 0, columns = 0;
  ASSERT_TRUE(experiment::decode_checkpoint_header(loaded.header, fingerprint,
                                                   points, columns));
  EXPECT_EQ(fingerprint, 0xabcdef12u);
  EXPECT_EQ(points, 3u);
  EXPECT_EQ(columns, 2u);
  ASSERT_EQ(loaded.records.size(), 2u);
  std::size_t point = 0;
  std::vector<std::string> row;
  ASSERT_TRUE(experiment::decode_checkpoint_row(loaded.records[1], point, row));
  EXPECT_EQ(point, 2u);
  EXPECT_EQ(row, (std::vector<std::string>{"5.0", "va\"l\\ue"}));
  fs::remove(path);
}

TEST(Checkpoint, CorruptBodyLineIsDroppedNotFatal) {
  const std::string path = temp_path("ckpt-corrupt");
  {
    auto journal = CheckpointJournal::create(
        path, experiment::encode_checkpoint_header(1, 2, 1));
    journal.append(experiment::encode_checkpoint_row(0, {"a"}));
    journal.append(experiment::encode_checkpoint_row(1, {"b"}));
  }
  // Flip one byte inside the second record's data: its CRC no longer
  // matches, so the loader must drop exactly that line.
  std::string text;
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    lines[2][lines[2].size() - 4] ^= 1;
    for (const auto& l : lines) text += l + "\n";
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.dropped_lines, 1u);
  fs::remove(path);
}

TEST(Checkpoint, TornTailIsDropped) {
  const std::string path = temp_path("ckpt-torn");
  {
    auto journal = CheckpointJournal::create(
        path, experiment::encode_checkpoint_header(1, 2, 1));
    journal.append(experiment::encode_checkpoint_row(0, {"a"}));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"crc32\":\"0abc";  // SIGKILL mid-write
  }
  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.dropped_lines, 1u);
  fs::remove(path);
}

/// The headline regression pin for the torn-tail append bug: a SIGKILL
/// mid-line leaves a fragment with no trailing '\n'; append_to must
/// truncate it before writing, or the first new record glues onto the
/// fragment and BOTH lines are lost on the next load.  Tear at several
/// byte offsets to cover "lost the CRC", "lost half the data", and "lost
/// only the newline".
TEST(Checkpoint, AppendAfterTornTailRepairsTheJournal) {
  const std::string intact_row = experiment::encode_checkpoint_row(0, {"a"});
  const std::string torn_row = experiment::encode_checkpoint_row(1, {"b"});
  const std::string new_row = experiment::encode_checkpoint_row(2, {"c"});
  for (const std::size_t keep : {std::size_t{1}, std::size_t{8},
                                 std::size_t{20}, std::size_t{35}}) {
    const std::string path =
        temp_path("ckpt-torn-append-" + std::to_string(keep));
    std::uintmax_t full_size = 0;
    {
      auto journal = CheckpointJournal::create(
          path, experiment::encode_checkpoint_header(1, 3, 1));
      journal.append(intact_row);
      full_size = fs::file_size(path);
      journal.append(torn_row);
    }
    // Simulate the SIGKILL: keep only the first `keep` bytes of the final
    // record's line (keep == line length - 1 tears just the newline).
    const std::uintmax_t line_bytes = fs::file_size(path) - full_size;
    ASSERT_LT(keep, line_bytes);
    fs::resize_file(path, full_size + keep);

    {
      auto journal = CheckpointJournal::append_to(path);
      journal.append(new_row);
    }
    const auto loaded = load_checkpoint(path);
    EXPECT_EQ(loaded.dropped_lines, 0u) << "torn at byte " << keep;
    ASSERT_EQ(loaded.records.size(), 2u) << "torn at byte " << keep;
    EXPECT_EQ(loaded.records[0], intact_row);
    EXPECT_EQ(loaded.records[1], new_row);
    fs::remove(path);
  }
}

TEST(Checkpoint, RepairTornTailReportsBytesRemoved) {
  const std::string path = temp_path("ckpt-repair");
  {
    auto journal = CheckpointJournal::create(
        path, experiment::encode_checkpoint_header(1, 1, 1));
  }
  EXPECT_EQ(experiment::repair_torn_tail(path), 0u);  // clean file: no-op
  const auto clean_size = fs::file_size(path);
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"crc32\":\"0abc";
  }
  EXPECT_EQ(experiment::repair_torn_tail(path), 14u);
  EXPECT_EQ(fs::file_size(path), clean_size);
  EXPECT_EQ(experiment::repair_torn_tail("/nonexistent/nowhere.jsonl"), 0u);

  // A file with no newline at all (death mid-header) truncates to empty.
  const std::string headerless = temp_path("ckpt-headerless");
  {
    std::ofstream out(headerless, std::ios::trunc);
    out << "{\"crc32\":\"12";
  }
  EXPECT_EQ(experiment::repair_torn_tail(headerless), 12u);
  EXPECT_EQ(fs::file_size(headerless), 0u);
  fs::remove(path);
  fs::remove(headerless);
}

TEST(Checkpoint, OverflowingSizeFieldIsRejected) {
  // 25 digits cannot fit in uint64; pre-fix the parser wrapped it into a
  // plausible small index.
  std::size_t point = 0;
  std::vector<std::string> row;
  EXPECT_FALSE(experiment::decode_checkpoint_row(
      "{\"point\":1234567890123456789012345,\"row\":[\"a\"]}", point, row));
  // UINT64_MAX is representable and must still parse...
  EXPECT_TRUE(experiment::decode_checkpoint_row(
      "{\"point\":18446744073709551615,\"row\":[\"a\"]}", point, row));
  EXPECT_EQ(point, 18446744073709551615ull);
  // ...but one more is an overflow, not a wrap to 0.
  EXPECT_FALSE(experiment::decode_checkpoint_row(
      "{\"point\":18446744073709551616,\"row\":[\"a\"]}", point, row));
}

TEST(Checkpoint, DecodersRejectTrailingGarbage) {
  std::uint64_t fingerprint = 0;
  std::size_t points = 0, columns = 0, point = 0, shard = 0;
  std::vector<std::string> names, row;

  const std::string header = experiment::encode_checkpoint_header(7, 2, 1);
  ASSERT_TRUE(experiment::decode_checkpoint_header(header, fingerprint,
                                                   points, columns, names));
  EXPECT_FALSE(experiment::decode_checkpoint_header(
      header + "junk", fingerprint, points, columns, names));

  const std::string row_rec = experiment::encode_checkpoint_row(1, {"a"});
  ASSERT_TRUE(experiment::decode_checkpoint_row(row_rec, point, row));
  EXPECT_FALSE(
      experiment::decode_checkpoint_row(row_rec + ",\"x\":1", point, row));
  EXPECT_FALSE(experiment::decode_checkpoint_row(
      "{\"point\":1,\"row\":[\"a\"]}}", point, row));

  const std::string claim = experiment::encode_checkpoint_claim(3, 1);
  ASSERT_TRUE(experiment::decode_checkpoint_claim(claim, point, shard));
  EXPECT_FALSE(
      experiment::decode_checkpoint_claim(claim + " ", point, shard));
}

TEST(Checkpoint, ClaimRecordRoundTrip) {
  std::size_t point = 0, shard = 0;
  ASSERT_TRUE(experiment::decode_checkpoint_claim(
      experiment::encode_checkpoint_claim(7, 3), point, shard));
  EXPECT_EQ(point, 7u);
  EXPECT_EQ(shard, 3u);
  // A claim is not a row and vice versa.
  std::vector<std::string> row;
  EXPECT_FALSE(experiment::decode_checkpoint_row(
      experiment::encode_checkpoint_claim(7, 3), point, row));
  EXPECT_FALSE(experiment::decode_checkpoint_claim(
      experiment::encode_checkpoint_row(7, {"x"}), point, shard));
}

TEST(Checkpoint, ShardJournalNameRoundTrip) {
  EXPECT_EQ(experiment::shard_journal_name(2, 4), "shard-2-of-4.jsonl");
  std::size_t index = 0, count = 0;
  ASSERT_TRUE(experiment::parse_shard_journal_name("shard-2-of-4.jsonl",
                                                   index, count));
  EXPECT_EQ(index, 2u);
  EXPECT_EQ(count, 4u);
  EXPECT_FALSE(
      experiment::parse_shard_journal_name("shard-4-of-4.jsonl", index, count));
  EXPECT_FALSE(
      experiment::parse_shard_journal_name("shard-2-of-4.json", index, count));
  EXPECT_FALSE(
      experiment::parse_shard_journal_name("shard--1-of-4.jsonl", index, count));
  EXPECT_FALSE(experiment::parse_shard_journal_name("serial.jsonl", index,
                                                    count));
}

TEST(Checkpoint, CorruptHeaderIsFatal) {
  const std::string path = temp_path("ckpt-badheader");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "this is not a checkpoint\n";
  }
  EXPECT_THROW(load_checkpoint(path), IoError);
  fs::remove(path);
}

// ------------------------------------------------- sweep integration ---

experiment::ExperimentConfig mini_config(std::uint64_t seed = 77) {
  experiment::ExperimentConfig config;
  config.watermark.bits = 4;
  config.watermark.redundancy = 1;
  config.flows = 2;
  config.packets_per_flow = 60;
  config.fp_pairs = 2;
  config.cost_bound = 50'000;
  config.master_seed = seed;
  config.threads = 1;
  return config;
}

experiment::SweepSpec mini_spec() {
  experiment::SweepSpec spec;
  spec.metric = experiment::Metric::kDetectionRate;
  spec.axis = experiment::SweepAxis::kChaffRate;
  spec.chaff_rates = {0.0, 1.0, 2.0, 3.0};
  return spec;
}

TEST(SweepFingerprint, SensitiveToValuesNotSchedule) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::uint64_t base = experiment::sweep_fingerprint(config, spec);

  auto other_seed = config;
  other_seed.master_seed += 1;
  EXPECT_NE(experiment::sweep_fingerprint(other_seed, spec), base);

  auto other_axis = spec;
  other_axis.chaff_rates.push_back(9.0);
  EXPECT_NE(experiment::sweep_fingerprint(config, other_axis), base);

  auto other_threads = config;
  other_threads.threads = 8;  // scheduling knob: tables are identical
  EXPECT_EQ(experiment::sweep_fingerprint(other_threads, spec), base);
}

TEST(SweepCheckpoint, ResumeRecomputesOnlyMissingPoints) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string clean = run_sweep(config, spec).to_string();

  const std::string path = temp_path("sweep-cancel");
  fs::remove(path);
  CancellationToken token;
  std::size_t started = 0;
  experiment::SweepControl control;
  control.checkpoint.path = path;
  control.cancel = &token;
  EXPECT_THROW(
      run_sweep(config, spec,
                [&](std::size_t, std::size_t, const std::string&) {
                  if (++started > 2) token.cancel();
                },
                control),
      Cancelled);

  // Only the journaled points may be replayed; the rest recompute.
  const auto loaded = load_checkpoint(path);
  EXPECT_LT(loaded.records.size(), spec.chaff_rates.size());
  EXPECT_GE(loaded.records.size(), 2u);

  experiment::SweepControl resume;
  resume.checkpoint.path = path;
  resume.checkpoint.resume = true;
  EXPECT_EQ(run_sweep(config, spec, {}, resume).to_string(), clean);
  fs::remove(path);
}

TEST(SweepCheckpoint, ResumeRejectsForeignCheckpoint) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string path = temp_path("sweep-foreign");
  {
    experiment::SweepControl control;
    control.checkpoint.path = path;
    run_sweep(config, spec, {}, control);
  }
  auto other = config;
  other.master_seed += 1;  // different sweep, same table shape
  experiment::SweepControl resume;
  resume.checkpoint.path = path;
  resume.checkpoint.resume = true;
  EXPECT_THROW(run_sweep(other, spec, {}, resume), IoError);
  fs::remove(path);
}

TEST(SweepCheckpoint, ResumeWithMissingFileStartsFresh) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string path = temp_path("sweep-missing");
  fs::remove(path);
  experiment::SweepControl resume;
  resume.checkpoint.path = path;
  resume.checkpoint.resume = true;
  const std::string resumed = run_sweep(config, spec, {}, resume).to_string();
  EXPECT_EQ(resumed, run_sweep(config, spec).to_string());
  fs::remove(path);
}

/// The acceptance pin for crash safety: SIGKILL the process mid-sweep at
/// three different seeded points, resume from the journal each time, and
/// require the byte-identical table.  fork() gives each kill a real
/// process death — no stack unwinding, no destructors, exactly what a
/// crash or OOM-kill does.
TEST(SweepCheckpoint, KillAndResumeReproducesTheTable) {
  const auto config = mini_config(91);
  const auto spec = mini_spec();
  const std::string clean = run_sweep(config, spec).to_string();

  for (const int kill_after : {1, 2, 3}) {
    const std::string path =
        temp_path("sweep-kill-" + std::to_string(kill_after));
    fs::remove(path);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: run the checkpointed sweep with the SIGKILL injection
      // armed.  threads=1 keeps the inline parallel_for path, so the
      // child never touches the parent's (forked-away) thread pool.
      experiment::SweepControl control;
      control.checkpoint.path = path;
      control.checkpoint.sigkill_after_points = kill_after;
      try {
        run_sweep(config, spec, {}, control);
      } catch (...) {
      }
      _exit(42);  // unreachable when the injection fires
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited instead of dying by signal (status " << status
        << ")";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // The journal must hold exactly the points completed before the kill.
    const auto loaded = load_checkpoint(path);
    EXPECT_EQ(loaded.records.size(), static_cast<std::size_t>(kill_after));

    experiment::SweepControl resume;
    resume.checkpoint.path = path;
    resume.checkpoint.resume = true;
    EXPECT_EQ(run_sweep(config, spec, {}, resume).to_string(), clean)
        << "kill after " << kill_after << " points";
    fs::remove(path);
  }
}

/// Exhaustive torn-tail sweep: whatever byte a crash tears the journal at,
/// load + resume must reproduce the clean table byte for byte.  Truncate
/// at EVERY offset within the final record's line (including losing just
/// the trailing newline) and resume from each mutilated copy.
TEST(SweepCheckpoint, TruncateEverywhereAlwaysResumes) {
  const auto config = mini_config(83);
  const auto spec = mini_spec();
  const std::string clean = run_sweep(config, spec).to_string();

  const std::string path = temp_path("sweep-truncate");
  fs::remove(path);
  {
    experiment::SweepControl control;
    control.checkpoint.path = path;
    run_sweep(config, spec, {}, control);
  }
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Offsets spanning the whole final line: from "last record fully gone"
  // to "only its newline missing".
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  for (std::size_t cut = last_line_start; cut < text.size(); ++cut) {
    const std::string torn = temp_path("sweep-truncate-at");
    {
      std::ofstream out(torn, std::ios::trunc | std::ios::binary);
      out << text.substr(0, cut);
    }
    experiment::SweepControl resume;
    resume.checkpoint.path = torn;
    resume.checkpoint.resume = true;
    EXPECT_EQ(run_sweep(config, spec, {}, resume).to_string(), clean)
        << "truncated at byte " << cut << " of " << text.size();
    fs::remove(torn);
  }
  fs::remove(path);
}

// ------------------------------------------------ parallel_for cancel ---

TEST(ParallelFor, CancelStopsClaimingNewItems) {
  CancellationToken token;
  std::atomic<int> ran{0};
  parallel_for(
      1000,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 10) token.cancel();
      },
      /*threads=*/1, &token);
  // Serial path: item 10 cancels, items 11+ never run.
  EXPECT_EQ(ran.load(), 11);

  token.reset();
  std::atomic<int> ran_mt{0};
  parallel_for(
      10'000,
      [&](std::size_t) {
        if (ran_mt.fetch_add(1) == 50) token.cancel();
      },
      /*threads=*/4, &token);
  EXPECT_LT(ran_mt.load(), 10'000);
}

TEST(ParallelFor, NullCancelTokenRunsEverything) {
  std::atomic<int> ran{0};
  parallel_for(100, [&](std::size_t) { ran.fetch_add(1); }, 2, nullptr);
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace sscor
