// Tests for the distributed sharded sweep backend (DESIGN.md §15): N
// workers journaling disjoint partitions of one grid into a shared
// directory, work-stealing via claim records, kill -9 + resume of
// individual shards, and the deterministic merge that must reproduce the
// serial single-process table byte for byte.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sscor/experiment/checkpoint.hpp"
#include "sscor/experiment/sweep.hpp"
#include "sscor/util/error.hpp"

namespace sscor {
namespace {

namespace fs = std::filesystem;
using experiment::CheckpointJournal;
using experiment::ClusterScan;
using experiment::ShardSpec;
using experiment::SweepControl;

experiment::ExperimentConfig mini_config(std::uint64_t seed = 77) {
  experiment::ExperimentConfig config;
  config.watermark.bits = 4;
  config.watermark.redundancy = 1;
  config.flows = 2;
  config.packets_per_flow = 60;
  config.fp_pairs = 2;
  config.cost_bound = 50'000;
  config.master_seed = seed;
  config.threads = 1;
  return config;
}

experiment::SweepSpec mini_spec() {
  experiment::SweepSpec spec;
  spec.metric = experiment::Metric::kDetectionRate;
  spec.axis = experiment::SweepAxis::kChaffRate;
  spec.chaff_rates = {0.0, 1.0, 2.0, 3.0};
  return spec;
}

/// Fresh per-test journal directory under the system temp dir.
std::string temp_dir(const std::string& stem) {
  static std::atomic<int> counter{0};
  const std::string dir =
      (fs::temp_directory_path() /
       (stem + "-" + std::to_string(getpid()) + "-" +
        std::to_string(counter.fetch_add(1))))
          .string();
  fs::remove_all(dir);
  return dir;
}

ShardSpec shard_of(std::size_t index, std::size_t count,
                   const std::string& dir, bool steal = false) {
  ShardSpec shard;
  shard.index = index;
  shard.count = count;
  shard.journal_dir = dir;
  shard.steal = steal;
  return shard;
}

TEST(ClusterSweep, RejectsMalformedShardSpec) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  EXPECT_THROW(
      run_sweep_shard(config, spec, shard_of(0, 0, "/tmp/nowhere")),
      InvalidArgument);
  EXPECT_THROW(
      run_sweep_shard(config, spec, shard_of(2, 2, "/tmp/nowhere")),
      InvalidArgument);
  ShardSpec no_dir = shard_of(0, 2, "");
  EXPECT_THROW(run_sweep_shard(config, spec, no_dir), InvalidArgument);
}

/// The core acceptance pin: for shard counts {1, 2, 4} and thread counts
/// {1, default}, running every worker (here: sequentially in one process)
/// yields a directory whose merge — returned by whichever worker finished
/// the grid — is byte-identical to the serial run_sweep table.
TEST(ClusterSweep, ShardedMatchesSerialAcrossShardAndThreadCounts) {
  const auto spec = mini_spec();
  for (const unsigned threads : {1u, 0u}) {
    auto config = mini_config();
    config.threads = threads;
    const std::string serial = run_sweep(config, spec).to_string();
    for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
      const std::string dir = temp_dir("cluster-matrix");
      for (std::size_t i = 0; i < count; ++i) {
        const auto table =
            run_sweep_shard(config, spec, shard_of(i, count, dir));
        if (i + 1 < count) {
          EXPECT_FALSE(table.has_value())
              << "worker " << i << "/" << count
              << " saw a complete grid before the last worker ran";
        } else {
          ASSERT_TRUE(table.has_value()) << "final worker " << i << "/"
                                         << count << " found gaps";
          EXPECT_EQ(table->to_string(), serial)
              << count << " shards, threads=" << threads;
        }
      }
      // The after-the-fact merge path sees the same bytes.
      const ClusterScan scan = experiment::scan_journal_dir(dir);
      EXPECT_EQ(scan.shard_files, count);
      EXPECT_EQ(experiment::merge_cluster(scan).to_string(), serial);
      fs::remove_all(dir);
    }
  }
}

/// A lone stealing worker completes every other shard's partition too.
TEST(ClusterSweep, StealingWorkerCompletesForeignPoints) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string serial = run_sweep(config, spec).to_string();
  const std::string dir = temp_dir("cluster-steal");

  const auto table = run_sweep_shard(config, spec,
                                     shard_of(0, 2, dir, /*steal=*/true));
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->to_string(), serial);

  // The steals are on the record: claims for every foreign point.
  const ClusterScan scan = experiment::scan_journal_dir(dir);
  EXPECT_TRUE(scan.claimed(1));
  EXPECT_TRUE(scan.claimed(3));
  EXPECT_FALSE(scan.claimed(0));
  fs::remove_all(dir);
}

/// kill -9 each shard of a 2-way cluster in turn (real fork + SIGKILL, no
/// unwinding), resume it, and require the merged table to match serial.
TEST(ClusterSweep, KillAndResumeEachShardReproducesTheTable) {
  const auto config = mini_config(91);
  const auto spec = mini_spec();
  const std::string serial = run_sweep(config, spec).to_string();

  for (const std::size_t victim : {std::size_t{0}, std::size_t{1}}) {
    const std::string dir =
        temp_dir("cluster-kill-" + std::to_string(victim));

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: one journaled point, then die mid-run.  threads=1 keeps
      // the inline parallel_for path off the forked-away thread pool.
      SweepControl control;
      control.checkpoint.sigkill_after_points = 1;
      try {
        run_sweep_shard(config, spec, shard_of(victim, 2, dir), {},
                        control);
      } catch (...) {
      }
      _exit(42);  // unreachable when the injection fires
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // The survivor finishes its own partition but must report the grid
    // incomplete (no stealing: the victim's claim-free points stay put
    // only because steal=false here).
    const auto survivor =
        run_sweep_shard(config, spec, shard_of(1 - victim, 2, dir));
    EXPECT_FALSE(survivor.has_value());

    // Resuming the victim recomputes only its missing points and, as the
    // finishing worker, returns the merged table.
    SweepControl resume;
    resume.checkpoint.resume = true;
    const auto resumed = run_sweep_shard(config, spec,
                                         shard_of(victim, 2, dir), {},
                                         resume);
    ASSERT_TRUE(resumed.has_value());
    EXPECT_EQ(resumed->to_string(), serial) << "victim shard " << victim;
    fs::remove_all(dir);
  }
}

/// A claim pins a stolen point to its claimer: other workers must not
/// duplicate it, and the claimer's resume computes it.
TEST(ClusterSweep, ClaimPinsStolenPointToClaimer) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string serial = run_sweep(config, spec).to_string();
  const std::string dir = temp_dir("cluster-claim");

  // Shards 0 and 2 of 3 complete their partitions; shard 1 (owning point
  // 1) never runs.  Points: 0->s0, 1->s1, 2->s2, 3->s0.
  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 3, dir)));
  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(2, 3, dir)));

  // Shard 0 claims point 1 (as if it died right after journaling the
  // claim, before computing the row).
  {
    auto journal = CheckpointJournal::append_to(
        (fs::path(dir) / experiment::shard_journal_name(0, 3)).string());
    journal.append(experiment::encode_checkpoint_claim(1, 0));
  }

  // A stealing third party must respect the claim and leave the point.
  EXPECT_FALSE(run_sweep_shard(config, spec,
                               shard_of(2, 3, dir, /*steal=*/true)));

  // The claimer's resume owns the pinned point and finishes the grid.
  SweepControl resume;
  resume.checkpoint.resume = true;
  const auto resumed =
      run_sweep_shard(config, spec, shard_of(0, 3, dir), {}, resume);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->to_string(), serial);
  fs::remove_all(dir);
}

/// Two workers racing the same steal journal the same deterministic row
/// twice; the scan counts it and the merge is unaffected.
TEST(ClusterSweep, DuplicateIdenticalRowsAreTolerated) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string serial = run_sweep(config, spec).to_string();
  const std::string dir = temp_dir("cluster-dup");

  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));
  ASSERT_TRUE(run_sweep_shard(config, spec, shard_of(1, 2, dir)));

  // Re-journal a row shard 1 owns into shard 0's journal, byte-identical.
  ClusterScan scan = experiment::scan_journal_dir(dir);
  ASSERT_TRUE(scan.have[1]);
  {
    auto journal = CheckpointJournal::append_to(
        (fs::path(dir) / experiment::shard_journal_name(0, 2)).string());
    journal.append(experiment::encode_checkpoint_row(1, scan.rows[1]));
  }
  scan = experiment::scan_journal_dir(dir);
  EXPECT_EQ(scan.duplicate_rows, 1u);
  EXPECT_EQ(experiment::merge_cluster(scan).to_string(), serial);
  fs::remove_all(dir);
}

/// Two *different* rows for one point mean the directory mixes
/// incompatible runs; folding that silently would publish garbage.
TEST(ClusterSweep, ConflictingRowsAreFatal) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string dir = temp_dir("cluster-conflict");

  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));
  ASSERT_TRUE(run_sweep_shard(config, spec, shard_of(1, 2, dir)));

  ClusterScan scan = experiment::scan_journal_dir(dir);
  auto bogus = scan.rows[1];
  bogus.back() = "9.9999";
  {
    auto journal = CheckpointJournal::append_to(
        (fs::path(dir) / experiment::shard_journal_name(0, 2)).string());
    journal.append(experiment::encode_checkpoint_row(1, bogus));
  }
  EXPECT_THROW(experiment::scan_journal_dir(dir), IoError);
  fs::remove_all(dir);
}

TEST(ClusterSweep, MergeOfIncompleteDirectoryIsFatal) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string dir = temp_dir("cluster-incomplete");
  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));
  const ClusterScan scan = experiment::scan_journal_dir(dir);
  EXPECT_FALSE(scan.complete());
  EXPECT_EQ(scan.missing_points(), (std::vector<std::size_t>{1, 3}));
  EXPECT_THROW(experiment::merge_cluster(scan), IoError);
  fs::remove_all(dir);
}

/// A worker joining a directory written by a different sweep (changed
/// config or spec) must refuse rather than mix tables.
TEST(ClusterSweep, ForeignSweepDirectoryIsFatal) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string dir = temp_dir("cluster-foreign");
  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));

  auto other = mini_config();
  other.master_seed += 1;
  EXPECT_THROW(run_sweep_shard(other, spec, shard_of(1, 2, dir)), IoError);
  fs::remove_all(dir);
}

/// Journals from different cluster shapes in one directory are a setup
/// error, caught at scan time.
TEST(ClusterSweep, MixedShardCountsAreFatal) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string dir = temp_dir("cluster-mixed");
  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));
  // The mismatched worker trips over the existing 2-way journals at its
  // own startup scan — after creating its journal, so the after-the-fact
  // scan refuses the directory too.
  EXPECT_THROW(run_sweep_shard(config, spec, shard_of(0, 4, dir)), IoError);
  EXPECT_THROW(experiment::scan_journal_dir(dir), IoError);
  fs::remove_all(dir);
}

/// Non-journal files in the directory are ignored; a shard journal whose
/// header was torn away is skipped (its points recompute), not fatal.
TEST(ClusterSweep, ScanSkipsNonJournalAndHeaderlessFiles) {
  const auto config = mini_config();
  const auto spec = mini_spec();
  const std::string serial = run_sweep(config, spec).to_string();
  const std::string dir = temp_dir("cluster-skip");

  EXPECT_FALSE(run_sweep_shard(config, spec, shard_of(0, 2, dir)));
  {
    std::ofstream stray((fs::path(dir) / "notes.txt").string());
    stray << "not a journal\n";
  }
  {
    // Shard 1 died mid-header-write: zero-length journal.
    std::ofstream torn(
        (fs::path(dir) / experiment::shard_journal_name(1, 2)).string());
  }
  const ClusterScan scan = experiment::scan_journal_dir(dir);
  EXPECT_EQ(scan.shard_files, 1u);
  EXPECT_EQ(scan.skipped_files, 1u);

  // The owner of the torn journal resumes from scratch and finishes.
  SweepControl resume;
  resume.checkpoint.resume = true;
  const auto resumed =
      run_sweep_shard(config, spec, shard_of(1, 2, dir), {}, resume);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->to_string(), serial);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sscor
