// Deep property sweeps (parameterized) over randomized instances:
//
//  * pruning feasibility == existence of a complete order-preserving
//    matching (checked against a reference greedy matcher, which is exact
//    for this interval-structured problem);
//  * the online correlator is decision-equivalent to the offline one on
//    random correlated and uncorrelated streams;
//  * QIM embed/decode round-trips across seeds;
//  * Zhang deviation is monotone in the window grid resolution.

#include <gtest/gtest.h>

#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/correlation/online.hpp"
#include "sscor/matching/candidate_sets.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"
#include "sscor/watermark/quantization.hpp"

namespace sscor {
namespace {

/// Reference feasibility check: a complete order-preserving matching of
/// upstream packets into the downstream flow exists iff greedily assigning
/// each upstream packet its earliest unused in-window candidate succeeds.
/// (Earliest-feasible is exact here because candidate sets are contiguous
/// windows over a totally ordered ground set.)
bool reference_feasible(const Flow& up, const Flow& down,
                        DurationUs delta) {
  std::size_t j = 0;
  for (std::size_t i = 0; i < up.size(); ++i) {
    const TimeUs t = up.timestamp(i);
    while (j < down.size() && down.timestamp(j) < t) ++j;
    if (j == down.size() || down.timestamp(j) > t + delta) return false;
    ++j;
  }
  return true;
}

class PruneFeasibilityTest : public testing::TestWithParam<int> {};

TEST_P(PruneFeasibilityTest, PruneAgreesWithReferenceMatcher) {
  Rng rng(40'000 + GetParam());
  const traffic::PoissonFlowModel model(1.0);
  for (int round = 0; round < 10; ++round) {
    const Flow up = model.generate(30, 0, rng());
    // Random downstream: sometimes related, sometimes not, sometimes too
    // short — all three outcomes must agree with the reference.
    Flow down;
    switch (rng.uniform_u64(3)) {
      case 0: {
        const traffic::UniformPerturber pert(millis(800), rng());
        const traffic::PoissonChaffInjector chaff(0.5, rng());
        down = chaff.apply(pert.apply(up));
        break;
      }
      case 1:
        down = model.generate(40, rng.uniform_i64(0, seconds(std::int64_t{20})),
                              rng());
        break;
      default:
        down = model.generate(15, 0, rng());
        break;
    }
    const DurationUs delta = millis(rng.uniform_i64(100, 2000));
    CostMeter cost;
    auto sets = CandidateSets::build(up, down, delta, std::nullopt, cost);
    const bool pruned_ok = sets.complete() && sets.prune(cost);
    EXPECT_EQ(pruned_ok, reference_feasible(up, down, delta))
        << "round " << round << " delta " << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneFeasibilityTest, testing::Range(0, 10));

class OnlineEquivalenceTest : public testing::TestWithParam<int> {};

TEST_P(OnlineEquivalenceTest, DecisionMatchesOffline) {
  const traffic::InteractiveSessionModel model;
  const std::uint64_t seed = 50'000 + GetParam();
  const Flow flow = model.generate(800, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Embedder embedder(WatermarkParams{}, mix_seeds(seed, 3));
  const auto marked = embedder.embed(flow, Watermark::random(24, rng));

  CorrelatorConfig config;
  config.max_delay = seconds(std::int64_t{3});
  const traffic::UniformPerturber perturber(config.max_delay,
                                            mix_seeds(seed, 4));
  const traffic::PoissonChaffInjector chaff(
      0.5 * static_cast<double>(GetParam() % 5), mix_seeds(seed, 5));

  const Flow correlated = chaff.apply(perturber.apply(marked.flow));
  const Flow unrelated = chaff.apply(
      perturber.apply(model.generate(800, 0, mix_seeds(seed, 6))));

  for (const Flow* stream : {&correlated, &unrelated}) {
    OnlineCorrelator online(marked, config);
    for (const auto& p : stream->packets()) {
      if (!online.ingest(p)) break;
    }
    online.finish();
    const auto offline = Correlator(config, Algorithm::kGreedyPlus)
                             .correlate(marked, *stream);
    EXPECT_EQ(online.result().correlated, offline.correlated);
    if (online.early_rejected()) {
      // Early exits must be sound: offline agrees they do not correlate.
      EXPECT_FALSE(offline.correlated);
    } else {
      EXPECT_EQ(online.result().hamming, offline.hamming);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineEquivalenceTest, testing::Range(0, 10));

class QimRoundTripTest : public testing::TestWithParam<int> {};

TEST_P(QimRoundTripTest, DetectsThroughMildPerturbation) {
  const traffic::InteractiveSessionModel model;
  const std::uint64_t seed = 60'000 + GetParam();
  QimParams params;
  const Flow flow = model.generate(1000, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  const Watermark wm = Watermark::random(params.bits, rng);
  const QimEmbedder embedder(params, mix_seeds(seed, 3));
  const auto marked = embedder.embed(flow, wm);

  // Perturbation inside QIM's designed tolerance: the epoch-uniform
  // process changes an IPD by at most the delay bound, and 150 ms stays
  // below the scheme's s/2 = 200 ms half-cell.  (Multi-second bounds leave
  // slope noise of roughly ipd/3 on think-time gaps, which exceeds the
  // half-cell — the fragility bench/ablation_schemes quantifies.)
  const traffic::UniformPerturber perturber(millis(150),
                                            mix_seeds(seed, 4));
  const auto decoded = decode_qim_positional(
      marked.schedule, params.step, perturber.apply(marked.flow));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_LE(decoded->hamming_distance(wm), 7u);

  // And an unrelated flow's parity bits are coin flips.
  const Flow other = model.generate(1000, 0, mix_seeds(seed, 5));
  const auto noise =
      decode_qim_positional(marked.schedule, params.step, other);
  ASSERT_TRUE(noise.has_value());
  EXPECT_GT(noise->hamming_distance(wm), 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QimRoundTripTest, testing::Range(0, 8));

TEST(ZhangProperty, FinerGridNeverHurtsDetection) {
  // The grid minimises the deviation; refining it can only find equal or
  // smaller deviations, so a correlated verdict never flips to negative.
  const traffic::InteractiveSessionModel model;
  for (int t = 0; t < 6; ++t) {
    const Flow up = model.generate(600, 0, 70'000 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{5}),
                                              71'000 + t);
    const traffic::PoissonChaffInjector chaff(1.5, 72'000 + t);
    const Flow down = chaff.apply(perturber.apply(up));

    ZhangPassiveParams coarse;
    coarse.max_delay = seconds(std::int64_t{5});
    coarse.grid_step = seconds(std::int64_t{1});
    ZhangPassiveParams fine = coarse;
    fine.grid_step = millis(250);

    const auto coarse_result = zhang_passive_correlate(up, down, coarse);
    const auto fine_result = zhang_passive_correlate(up, down, fine);
    if (coarse_result.smallest_deviation) {
      ASSERT_TRUE(fine_result.smallest_deviation.has_value());
      EXPECT_LE(*fine_result.smallest_deviation,
                *coarse_result.smallest_deviation);
    }
    EXPECT_GE(fine_result.correlated, coarse_result.correlated);
    EXPECT_GE(fine_result.cost, coarse_result.cost);
  }
}

}  // namespace
}  // namespace sscor
