// Unit tests for sscor/pcap: classic pcap reading and writing, including
// byte-swapped and nanosecond-resolution files.

#include <gtest/gtest.h>

#include <sstream>

#include "sscor/pcap/pcap_reader.hpp"
#include "sscor/pcap/pcap_writer.hpp"
#include "sscor/util/error.hpp"

namespace sscor::pcap {
namespace {

Record make_record(TimeUs ts, std::initializer_list<std::uint8_t> bytes) {
  Record r;
  r.timestamp = ts;
  r.data.assign(bytes);
  r.original_length = static_cast<std::uint32_t>(r.data.size());
  return r;
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, LinkType::kRawIp);
    writer.write(make_record(1'000'000, {1, 2, 3, 4}));
    writer.write(make_record(2'500'123, {9, 8, 7}));
    writer.flush();
    EXPECT_EQ(writer.records_written(), 2u);
  }
  stream.seekg(0);
  PcapReader reader(stream);
  EXPECT_EQ(reader.header().link_type, LinkType::kRawIp);
  EXPECT_FALSE(reader.header().swapped);
  EXPECT_FALSE(reader.header().nanosecond);
  EXPECT_EQ(reader.header().version_major, kVersionMajor);

  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp, 1'000'000);
  EXPECT_EQ(r1->data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(r1->original_length, 4u);

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp, 2'500'123);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/sscor_pcap_test.pcap";
  {
    PcapWriter writer(path, LinkType::kEthernet);
    writer.write(make_record(42, {0xde, 0xad}));
  }
  const auto records = read_pcap_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 42);
  PcapReader reader(path);
  EXPECT_EQ(reader.header().link_type, LinkType::kEthernet);
}

TEST(Pcap, SnaplenTruncatesCapturedBytes) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp, /*snaplen=*/2);
  writer.write(make_record(1, {1, 2, 3, 4, 5}));
  stream.seekg(0);
  PcapReader reader(stream);
  const auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->data.size(), 2u);
  EXPECT_EQ(r->original_length, 5u);
}

// Hand-builds a big-endian ("swapped" when read on little-endian)
// nanosecond-resolution capture and checks normalisation.
TEST(Pcap, ReadsSwappedNanosecondFiles) {
  auto be32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                       static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  auto be16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  std::string file;
  file += be32(kMagicNanos);  // big-endian on disk -> swapped for us
  file += be16(2);
  file += be16(4);
  file += be32(0);
  file += be32(0);
  file += be32(65535);
  file += be32(101);          // raw IP
  file += be32(3);            // ts_sec
  file += be32(500'000'000);  // ts_nsec = 0.5s
  file += be32(2);            // incl_len
  file += be32(2);            // orig_len
  file += "\xaa\xbb";

  std::stringstream stream(file);
  PcapReader reader(stream);
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_TRUE(reader.header().nanosecond);
  EXPECT_EQ(reader.header().link_type, LinkType::kRawIp);
  const auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->timestamp, 3 * kMicrosPerSecond + 500'000);
  EXPECT_EQ(r->data.size(), 2u);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream stream(std::string(24, '\0'));
  EXPECT_THROW(PcapReader reader(stream), IoError);
}

TEST(Pcap, RejectsTruncatedGlobalHeader) {
  std::stringstream stream(std::string(10, '\0'));
  EXPECT_THROW(PcapReader reader(stream), IoError);
}

TEST(Pcap, RejectsTruncatedRecord) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp);
  writer.write(make_record(1, {1, 2, 3, 4}));
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 2);  // chop the record body
  std::stringstream truncated(bytes);
  PcapReader reader(truncated);
  EXPECT_THROW(reader.next(), IoError);
}

TEST(Pcap, RejectsNegativeTimestampOnWrite) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp);
  EXPECT_THROW(writer.write(make_record(-1, {1})), InvalidArgument);
}

TEST(Pcap, OpenMissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/path.pcap"), IoError);
  EXPECT_THROW(read_pcap_file("/nonexistent/path.pcap"), IoError);
}

}  // namespace
}  // namespace sscor::pcap
