// Unit tests for sscor/pcap: classic pcap reading and writing, including
// byte-swapped and nanosecond-resolution files.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "sscor/pcap/pcap_reader.hpp"
#include "sscor/pcap/pcap_writer.hpp"
#include "sscor/util/error.hpp"

namespace sscor::pcap {
namespace {

Record make_record(TimeUs ts, std::initializer_list<std::uint8_t> bytes) {
  Record r;
  r.timestamp = ts;
  r.data.assign(bytes);
  r.original_length = static_cast<std::uint32_t>(r.data.size());
  return r;
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, LinkType::kRawIp);
    writer.write(make_record(1'000'000, {1, 2, 3, 4}));
    writer.write(make_record(2'500'123, {9, 8, 7}));
    writer.flush();
    EXPECT_EQ(writer.records_written(), 2u);
  }
  stream.seekg(0);
  PcapReader reader(stream);
  EXPECT_EQ(reader.header().link_type, LinkType::kRawIp);
  EXPECT_FALSE(reader.header().swapped);
  EXPECT_FALSE(reader.header().nanosecond);
  EXPECT_EQ(reader.header().version_major, kVersionMajor);

  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp, 1'000'000);
  EXPECT_EQ(r1->data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(r1->original_length, 4u);

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp, 2'500'123);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/sscor_pcap_test.pcap";
  {
    PcapWriter writer(path, LinkType::kEthernet);
    writer.write(make_record(42, {0xde, 0xad}));
  }
  const auto records = read_pcap_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 42);
  PcapReader reader(path);
  EXPECT_EQ(reader.header().link_type, LinkType::kEthernet);
}

TEST(Pcap, SnaplenTruncatesCapturedBytes) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp, /*snaplen=*/2);
  writer.write(make_record(1, {1, 2, 3, 4, 5}));
  stream.seekg(0);
  PcapReader reader(stream);
  const auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->data.size(), 2u);
  EXPECT_EQ(r->original_length, 5u);
}

// Hand-builds a big-endian ("swapped" when read on little-endian)
// nanosecond-resolution capture and checks normalisation.
TEST(Pcap, ReadsSwappedNanosecondFiles) {
  auto be32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                       static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  auto be16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v >> 8), static_cast<char>(v)};
  };
  std::string file;
  file += be32(kMagicNanos);  // big-endian on disk -> swapped for us
  file += be16(2);
  file += be16(4);
  file += be32(0);
  file += be32(0);
  file += be32(65535);
  file += be32(101);          // raw IP
  file += be32(3);            // ts_sec
  file += be32(500'000'000);  // ts_nsec = 0.5s
  file += be32(2);            // incl_len
  file += be32(2);            // orig_len
  file += "\xaa\xbb";

  std::stringstream stream(file);
  PcapReader reader(stream);
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_TRUE(reader.header().nanosecond);
  EXPECT_EQ(reader.header().link_type, LinkType::kRawIp);
  const auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->timestamp, 3 * kMicrosPerSecond + 500'000);
  EXPECT_EQ(r->data.size(), 2u);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream stream(std::string(24, '\0'));
  EXPECT_THROW(PcapReader reader(stream), IoError);
}

TEST(Pcap, RejectsTruncatedGlobalHeader) {
  std::stringstream stream(std::string(10, '\0'));
  EXPECT_THROW(PcapReader reader(stream), IoError);
}

TEST(Pcap, RejectsTruncatedRecord) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp);
  writer.write(make_record(1, {1, 2, 3, 4}));
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 2);  // chop the record body
  std::stringstream truncated(bytes);
  PcapReader reader(truncated);
  EXPECT_THROW(reader.next(), IoError);
}

// Hand-builds a capture whose global header declares the given snaplen and
// whose single record header claims `incl_len` body bytes (none present).
std::string crafted_capture(std::uint32_t snaplen, std::uint32_t incl_len,
                            std::uint32_t ts_frac = 0) {
  auto le32 = [](std::uint32_t v) {
    std::string s(4, '\0');
    s[0] = static_cast<char>(v & 0xff);
    s[1] = static_cast<char>((v >> 8) & 0xff);
    s[2] = static_cast<char>((v >> 16) & 0xff);
    s[3] = static_cast<char>((v >> 24) & 0xff);
    return s;
  };
  std::string bytes;
  bytes += le32(kMagicMicros);
  bytes += le32(2 | (4u << 16));  // version 2.4
  bytes += le32(0) + le32(0);     // thiszone, sigfigs
  bytes += le32(snaplen);
  bytes += le32(static_cast<std::uint32_t>(LinkType::kRawIp));
  bytes += le32(1) + le32(ts_frac);  // ts_sec, ts_frac
  bytes += le32(incl_len) + le32(incl_len);
  return bytes;
}

TEST(Pcap, RejectsGiantRecordLengthBeforeAllocating) {
  // Regression: the implausibility bound snaplen + 65535 used to be
  // computed in 32 bits.  A crafted header with snaplen 0xfff00000 kept the
  // sum below 2^32, so incl_len = snaplen passed the check and
  // data.resize(incl_len) allocated ~4 GiB from a 24-byte header before any
  // body byte was read; snaplen near UINT32_MAX wrapped the bound outright.
  // Post-fix both throw at the hard record cap, before allocating.
  const std::pair<std::uint32_t, std::uint32_t> cases[] = {
      {0xfff00000u, 0xfff00000u},  // pre-fix: passed the bound, 4 GiB alloc
      {0xffffffffu, 0xfffffff0u},  // pre-fix: bound wrapped to 65534
  };
  for (const auto& [snaplen, incl_len] : cases) {
    std::stringstream stream(crafted_capture(snaplen, incl_len));
    PcapReader reader(stream);
    EXPECT_THROW(reader.next(), IoError) << "snaplen " << snaplen;
  }
  // A record within the hard cap but beyond the file's real size still
  // fails as truncated, by reading incrementally — not by pre-allocating.
  std::stringstream stream(crafted_capture(65535, 100'000));
  PcapReader reader(stream);
  EXPECT_THROW(reader.next(), IoError);
}

TEST(Pcap, RejectsOutOfRangeTimestampFraction) {
  {
    std::stringstream stream(crafted_capture(65535, 0, /*ts_frac=*/1'000'000));
    PcapReader reader(stream);
    EXPECT_THROW(reader.next(), IoError);
  }
  {
    // Just under the limit parses fine.
    std::stringstream stream(crafted_capture(65535, 0, /*ts_frac=*/999'999));
    PcapReader reader(stream);
    const auto r = reader.next();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->timestamp, 1'999'999);
  }
}

TEST(Pcap, RejectsNegativeTimestampOnWrite) {
  std::stringstream stream;
  PcapWriter writer(stream, LinkType::kRawIp);
  EXPECT_THROW(writer.write(make_record(-1, {1})), InvalidArgument);
}

TEST(Pcap, OpenMissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/path.pcap"), IoError);
  EXPECT_THROW(read_pcap_file("/nonexistent/path.pcap"), IoError);
}

}  // namespace
}  // namespace sscor::pcap
