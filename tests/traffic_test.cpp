// Unit and property tests for sscor/traffic: samplers, generators, and the
// adversarial transforms (perturbation, chaff, loss/re-packetization).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/distributions.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/loss_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/traffic/size_model.hpp"
#include "sscor/traffic/transform.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/stats.hpp"

namespace sscor::traffic {
namespace {

TEST(Distributions, EmpiricalCdfInterpolates) {
  const EmpiricalCdf cdf({{0.0, 1.0}, {0.5, 2.0}, {1.0, 4.0}});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.25), 1.5);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.75), 3.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 0.5 * 1.5 + 0.5 * 3.0);
}

TEST(Distributions, EmpiricalCdfValidatesInput) {
  EXPECT_THROW(EmpiricalCdf({{0.0, 1.0}}), InvalidArgument);
  EXPECT_THROW(EmpiricalCdf({{0.1, 1.0}, {1.0, 2.0}}), InvalidArgument);
  EXPECT_THROW(EmpiricalCdf({{0.0, 1.0}, {0.9, 2.0}}), InvalidArgument);
  EXPECT_THROW(EmpiricalCdf({{0.0, 1.0}, {0.5, 0.5}, {1.0, 2.0}}),
               InvalidArgument);
}

TEST(Distributions, EmpiricalCdfSampleMeanMatches) {
  const EmpiricalCdf cdf({{0.0, 0.0}, {1.0, 2.0}});  // uniform on [0, 2]
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(cdf.sample(rng));
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(Distributions, SamplerValidation) {
  EXPECT_THROW(ExponentialSampler(0.0), InvalidArgument);
  EXPECT_THROW(ParetoSampler(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(LogNormalSampler(0.0, -1.0), InvalidArgument);
}

TEST(SizeModel, SshQuantization) {
  const SshSizeModel model(16, 2, 0.25);
  Rng rng(9);
  for (int i = 0; i < 2'000; ++i) {
    const auto size = model.sample(rng);
    EXPECT_EQ(size % 16, 0u);
    EXPECT_GE(size, 32u);
  }
}

TEST(SizeModel, QuantizeSize) {
  EXPECT_EQ(quantize_size(1, 16), 16u);
  EXPECT_EQ(quantize_size(16, 16), 16u);
  EXPECT_EQ(quantize_size(17, 16), 32u);
  EXPECT_EQ(quantize_size(0, 16), 0u);
  EXPECT_THROW(quantize_size(5, 0), InvalidArgument);
}

TEST(SizeModel, TelnetMostlyKeystrokes) {
  const TelnetSizeModel model;
  Rng rng(11);
  int single = 0;
  for (int i = 0; i < 10'000; ++i) {
    single += model.sample(rng) == 1;
  }
  EXPECT_GT(single, 8'000);
  EXPECT_LT(single, 9'000);
}

class GeneratorTest : public testing::TestWithParam<int> {};

TEST_P(GeneratorTest, InteractiveModelBasicProperties) {
  const InteractiveSessionModel model;
  const std::uint64_t seed = 1000 + GetParam();
  const Flow flow = model.generate(500, millis(123), seed);
  ASSERT_EQ(flow.size(), 500u);
  EXPECT_EQ(flow.start_time(), millis(123));
  for (std::size_t i = 0; i + 1 < flow.size(); ++i) {
    EXPECT_GE(flow.ipd(i), 0);
  }
  // Deterministic in the seed.
  EXPECT_EQ(model.generate(500, millis(123), seed).timestamps(),
            flow.timestamps());
  // Different seeds give different flows.
  EXPECT_NE(model.generate(500, millis(123), seed + 1).timestamps(),
            flow.timestamps());
}

TEST_P(GeneratorTest, TcplibModelBasicProperties) {
  const TcplibTelnetModel model;
  const Flow flow = model.generate(400, 0, 2000 + GetParam());
  ASSERT_EQ(flow.size(), 400u);
  for (std::size_t i = 0; i + 1 < flow.size(); ++i) {
    EXPECT_GT(flow.ipd(i), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest, testing::Range(0, 8));

TEST(Generators, InteractiveRateInExpectedBand) {
  const InteractiveSessionModel model;
  RunningStats rates;
  for (int s = 0; s < 10; ++s) {
    const Flow flow = model.generate(1000, 0, 3000 + s);
    rates.add(flow.stats().mean_rate_pps);
  }
  // Interactive sessions run at ~1-4 packets/second on average.
  EXPECT_GT(rates.mean(), 0.8);
  EXPECT_LT(rates.mean(), 5.0);
}

TEST(Generators, PoissonModelRate) {
  const PoissonFlowModel model(2.0);
  const Flow flow = model.generate(4000, 0, 77);
  EXPECT_NEAR(flow.stats().mean_rate_pps, 2.0, 0.2);
}

TEST(Perturbation, DelaysBoundedAndOrderPreserved) {
  const InteractiveSessionModel model;
  const Flow flow = model.generate(800, 0, 42);
  for (const auto delta :
       {millis(0), millis(500), seconds(std::int64_t{7})}) {
    const UniformPerturber perturber(delta, 99);
    const Flow out = perturber.apply(flow);
    ASSERT_EQ(out.size(), flow.size());
    TimeUs previous = out.timestamp(0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const DurationUs delay = out.timestamp(i) - flow.timestamp(i);
      EXPECT_GE(delay, 0) << "packet " << i;
      EXPECT_LE(delay, delta) << "packet " << i;
      EXPECT_GE(out.timestamp(i), previous);
      previous = out.timestamp(i);
    }
  }
}

TEST(Perturbation, MarginalRoughlyUniform) {
  // The random-walk delay is stationary-uniform; pooled over seeds the
  // delays should fill [0, max] without piling at either end.
  const InteractiveSessionModel model;
  const auto delta = seconds(std::int64_t{4});
  Histogram hist(0.0, 4.0, 4);
  for (int s = 0; s < 40; ++s) {
    const Flow flow = model.generate(300, 0, 500 + s);
    const UniformPerturber perturber(delta, 900 + s);
    const Flow out = perturber.apply(flow);
    for (std::size_t i = 0; i < out.size(); ++i) {
      hist.add(to_seconds(out.timestamp(i) - flow.timestamp(i)));
    }
  }
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    EXPECT_GT(hist.fraction(b), 0.10) << "bucket " << b;
    EXPECT_LT(hist.fraction(b), 0.45) << "bucket " << b;
  }
}

TEST(Perturbation, DeterministicInSeed) {
  const InteractiveSessionModel model;
  const Flow flow = model.generate(200, 0, 1);
  const UniformPerturber p1(seconds(std::int64_t{3}), 7);
  const UniformPerturber p2(seconds(std::int64_t{3}), 7);
  const UniformPerturber p3(seconds(std::int64_t{3}), 8);
  EXPECT_EQ(p1.apply(flow).timestamps(), p2.apply(flow).timestamps());
  EXPECT_NE(p1.apply(flow).timestamps(), p3.apply(flow).timestamps());
}

TEST(Perturbation, IidSortBoundsAndOrder) {
  const InteractiveSessionModel model;
  const Flow flow = model.generate(500, 0, 21);
  const auto delta = seconds(std::int64_t{5});
  const IidSortPerturber perturber(delta, 31);
  const Flow out = perturber.apply(flow);
  ASSERT_EQ(out.size(), flow.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const DurationUs delay = out.timestamp(i) - flow.timestamp(i);
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, delta);
    if (i > 0) {
      EXPECT_GE(out.timestamp(i), out.timestamp(i - 1));
    }
  }
}

TEST(Perturbation, ZeroDelayIsIdentity) {
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>{1, 2, 3});
  EXPECT_EQ(UniformPerturber(0, 5).apply(flow).timestamps(),
            flow.timestamps());
  EXPECT_EQ(IidSortPerturber(0, 5).apply(flow).timestamps(),
            flow.timestamps());
}

TEST(Chaff, RateAndMarking) {
  const InteractiveSessionModel model;
  const Flow flow = model.generate(1000, 0, 55);
  const double rate = 2.0;
  const PoissonChaffInjector injector(rate, 66);
  const Flow out = injector.apply(flow);
  EXPECT_GT(out.size(), flow.size());
  const std::size_t chaff = out.chaff_count();
  EXPECT_EQ(out.size(), flow.size() + chaff);
  const double expected =
      rate * to_seconds(flow.duration());
  EXPECT_NEAR(static_cast<double>(chaff), expected,
              4 * std::sqrt(expected));
  // Time-ordered output.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LE(out.timestamp(i), out.timestamp(i + 1));
  }
  // Original packets survive untouched (as a subsequence).
  std::vector<TimeUs> real;
  for (const auto& p : out.packets()) {
    if (!p.is_chaff) real.push_back(p.timestamp);
  }
  EXPECT_EQ(real, flow.timestamps());
}

TEST(Chaff, ZeroRateIsIdentity) {
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>{1, 2, 3});
  const PoissonChaffInjector injector(0.0, 1);
  EXPECT_EQ(injector.apply(flow).timestamps(), flow.timestamps());
}

TEST(Loss, DropRate) {
  const PoissonFlowModel model(2.0);
  const Flow flow = model.generate(5000, 0, 3);
  const LossRepacketizationModel loss(0.2, 0, 9);
  const Flow out = loss.apply(flow);
  EXPECT_NEAR(static_cast<double>(out.size()), 4000.0, 150.0);
}

TEST(Loss, MergeWindowCoalesces) {
  Flow flow({PacketRecord{0, 10, false}, PacketRecord{100, 20, false},
             PacketRecord{5'000, 30, false}});
  const LossRepacketizationModel merge(0.0, 200, 1);
  const Flow out = merge.apply(flow);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.packet(0).size, 30u);      // 10 + 20 merged
  EXPECT_EQ(out.timestamp(0), 100);        // flushed at the later packet
  EXPECT_EQ(out.packet(1).size, 30u);
}

TEST(Reordering, DisplacesPacketsButKeepsThem) {
  // Unique per-packet sizes label the packets so movement is observable.
  std::vector<PacketRecord> packets;
  Rng rng(5);
  TimeUs t = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    packets.push_back(PacketRecord{t, i, false});
    t += seconds(rng.exponential(0.5));
  }
  const Flow flow(std::move(packets));
  const ReorderingModel reorder(0.3, seconds(std::int64_t{1}), 7);
  const Flow out = reorder.apply(flow);
  ASSERT_EQ(out.size(), flow.size());
  // Time-ordered output (the Flow invariant).
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LE(out.timestamp(i), out.timestamp(i + 1));
  }
  // The multiset of sizes survives (no packet lost or duplicated)...
  std::vector<std::uint32_t> before;
  std::vector<std::uint32_t> after;
  for (const auto& p : flow.packets()) before.push_back(p.size);
  for (const auto& p : out.packets()) after.push_back(p.size);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  // ...but the per-position sequence does not: reordering happened.
  std::size_t moved = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    moved += out.packet(i).size != flow.packet(i).size;
  }
  EXPECT_GT(moved, 100u);
}

TEST(Reordering, ZeroProbabilityIsIdentity) {
  const PoissonFlowModel model(2.0);
  const Flow flow = model.generate(100, 0, 9);
  const ReorderingModel reorder(0.0, seconds(std::int64_t{1}), 7);
  EXPECT_EQ(reorder.apply(flow).timestamps(), flow.timestamps());
  EXPECT_THROW(ReorderingModel(1.5, 0, 1), InvalidArgument);
}

TEST(Loss, ValidatesParameters) {
  EXPECT_THROW(LossRepacketizationModel(1.0, 0, 1), InvalidArgument);
  EXPECT_THROW(LossRepacketizationModel(-0.1, 0, 1), InvalidArgument);
  EXPECT_THROW(LossRepacketizationModel(0.1, -1, 1), InvalidArgument);
}

TEST(Loss, EmptyFlowPassesThrough) {
  const Flow empty;
  const LossRepacketizationModel loss(0.5, 500, 3);
  const Flow out = loss.apply(empty);
  EXPECT_EQ(out.size(), 0u);
}

TEST(Loss, SinglePacketFlowSurvivesMergeWindow) {
  // One packet has no neighbour to merge with: any merge window must leave
  // it untouched, and the drop coin is the only way to lose it.
  const Flow one({PacketRecord{1000, 64, false}});
  const LossRepacketizationModel keep(0.0, seconds(std::int64_t{10}), 5);
  const Flow out = keep.apply(one);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.timestamp(0), 1000);
  EXPECT_EQ(out.packet(0).size, 64u);
}

TEST(Loss, NearTotalDropLeavesWellFormedFlow) {
  // Just under the validation bound: almost every packet drops, and
  // whatever survives must still be a well-formed (time-ordered) flow.
  const PoissonFlowModel model(2.0);
  const Flow flow = model.generate(400, 0, 11);
  const LossRepacketizationModel loss(0.999, 0, 13);
  const Flow out = loss.apply(flow);
  EXPECT_LT(out.size(), 10u);
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LE(out.timestamp(i), out.timestamp(i + 1));
  }
}

TEST(Loss, MergeWindowSpanningWholeFlowCollapsesToOnePacket) {
  // Maximal coalescing: every IPD inside the window leaves exactly one
  // packet carrying the summed size and the last timestamp.
  Flow flow({PacketRecord{0, 1, false}, PacketRecord{100, 2, false},
             PacketRecord{200, 4, false}, PacketRecord{300, 8, false}});
  const LossRepacketizationModel merge(0.0, 1000, 1);
  const Flow out = merge.apply(flow);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.timestamp(0), 300);
  EXPECT_EQ(out.packet(0).size, 15u);
}

TEST(Pipeline, ComposesInOrder) {
  const Flow flow = Flow::from_timestamps(
      std::vector<TimeUs>{0, seconds(std::int64_t{10})});
  TransformPipeline pipeline;
  pipeline.add(std::make_shared<ConstantDelay>(millis(100)));
  pipeline.add(std::make_shared<ConstantDelay>(millis(50)));
  const Flow out = pipeline.apply(flow);
  EXPECT_EQ(out.timestamp(0), millis(150));
  EXPECT_EQ(pipeline.size(), 2u);
  EXPECT_THROW(pipeline.add(nullptr), InvalidArgument);
}

TEST(Pipeline, IdentityTransform) {
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>{1, 2});
  EXPECT_EQ(IdentityTransform().apply(flow).timestamps(), flow.timestamps());
}

}  // namespace
}  // namespace sscor::traffic
