// Tests for the live ops surface: Prometheus rendering, the snapshot-delta
// rate layer, the structured event log, the HTTP stats server/client pair,
// and the StreamTelemetry endpoints over a real engine — including the
// invariant the whole surface is built on: telemetry changes no verdict.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sscor/experiment/stream_corpus.hpp"
#include "sscor/net/http_client.hpp"
#include "sscor/net/stats_server.hpp"
#include "sscor/stream/stream_engine.hpp"
#include "sscor/stream/telemetry.hpp"
#include "sscor/util/error.hpp"
#include "sscor/util/event_log.hpp"
#include "sscor/util/gauge.hpp"
#include "sscor/util/histogram.hpp"
#include "sscor/util/json_parse.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/prometheus.hpp"

namespace sscor {
namespace {

// The event log appends across open() calls (a daemon restart must not
// clobber history), so tests always start from a clean file.
std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "sscor_telemetry_" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Prometheus, SanitizesNames) {
  EXPECT_EQ(metrics::prometheus_name("stream.flows.created"),
            "stream_flows_created");
  EXPECT_EQ(metrics::prometheus_name("a-b c+d"), "a_b_c_d");
  EXPECT_EQ(metrics::prometheus_name("already_fine_123"),
            "already_fine_123");
}

TEST(Prometheus, RendersEveryRegistrySection) {
  metrics::reset();
  metrics::counter("prom.test.events").add(42);
  metrics::gauge("prom.test.level").set(-7);
  metrics::timer("prom.test.phase").add_micros(1'500'000);
  metrics::histogram("prom.test.sizes").record(1);
  metrics::histogram("prom.test.sizes").record(100);
  metrics::histogram("prom.test.sizes").record(100);

  std::vector<metrics::RateSample> rates;
  rates.push_back({"prom.test.events", 10, 5.0});
  const std::string text =
      metrics::render_prometheus(metrics::snapshot(), rates);

  EXPECT_NE(text.find("# TYPE sscor_prom_test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_events_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sscor_prom_test_level gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_level -7\n"), std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_phase_seconds_total 1.500000\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_phase_invocations_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sscor_prom_test_sizes histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_sizes_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_sizes_sum 201\n"), std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_sizes_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_sizes_quantile{q=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_events_per_second 5.000000\n"),
            std::string::npos);
  metrics::reset();
}

TEST(Prometheus, HistogramBucketsAreCumulativeWithInclusiveBounds) {
  metrics::reset();
  metrics::histogram("prom.test.cume").record(0);
  metrics::histogram("prom.test.cume").record(1);
  metrics::histogram("prom.test.cume").record(1);
  const std::string text = metrics::render_prometheus(metrics::snapshot());
  // Value 0 lands in bucket 0 (upper bound lower_bound(1) - 1 = 0), the
  // two 1s in bucket 1; cumulative counts must include the prefix.
  EXPECT_NE(text.find("sscor_prom_test_cume_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_cume_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sscor_prom_test_cume_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  metrics::reset();
}

metrics::Snapshot counters_only(
    std::vector<metrics::Snapshot::CounterEntry> counters) {
  metrics::Snapshot snap;
  snap.counters = std::move(counters);
  return snap;
}

TEST(DeltaTracker, FirstScrapeYieldsNoRates) {
  metrics::DeltaTracker tracker;
  const auto rates = tracker.update(counters_only({{"a", 100}}), 10.0);
  EXPECT_TRUE(rates.empty());
}

TEST(DeltaTracker, ComputesPerSecondRates) {
  metrics::DeltaTracker tracker;
  tracker.update(counters_only({{"a", 100}, {"b", 5}}), 10.0);
  const auto rates =
      tracker.update(counters_only({{"a", 150}, {"b", 5}}), 12.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].name, "a");
  EXPECT_EQ(rates[0].delta, 50u);
  EXPECT_DOUBLE_EQ(rates[0].per_second, 25.0);
  EXPECT_EQ(rates[1].delta, 0u);
  EXPECT_DOUBLE_EQ(rates[1].per_second, 0.0);
}

TEST(DeltaTracker, CounterResetRestartsFromZero) {
  metrics::DeltaTracker tracker;
  tracker.update(counters_only({{"a", 1000}}), 0.0);
  const auto rates = tracker.update(counters_only({{"a", 30}}), 10.0);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].delta, 30u);
  EXPECT_DOUBLE_EQ(rates[0].per_second, 3.0);
}

TEST(DeltaTracker, NewCounterCountsFromZero) {
  metrics::DeltaTracker tracker;
  tracker.update(counters_only({{"a", 1}}), 0.0);
  const auto rates =
      tracker.update(counters_only({{"a", 1}, {"fresh", 8}}), 4.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[1].name, "fresh");
  EXPECT_EQ(rates[1].delta, 8u);
  EXPECT_DOUBLE_EQ(rates[1].per_second, 2.0);
}

TEST(DeltaTracker, NonPositiveIntervalYieldsNoRates) {
  metrics::DeltaTracker tracker;
  tracker.update(counters_only({{"a", 1}}), 5.0);
  EXPECT_TRUE(tracker.update(counters_only({{"a", 2}}), 5.0).empty());
  EXPECT_TRUE(tracker.update(counters_only({{"a", 3}}), 4.0).empty());
  // The tracker still rebaselines, so a later sane interval works.
  const auto rates = tracker.update(counters_only({{"a", 7}}), 6.0);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].delta, 4u);
}

TEST(EventLog, WritesParsableRecordsAndHonoursSeverityFloor) {
  const std::string path = temp_path("events_basic.jsonl");
  eventlog::Options options;
  options.min_severity = eventlog::Severity::kInfo;
  eventlog::open(path, options);
  ASSERT_TRUE(eventlog::enabled());
  eventlog::emit(eventlog::Severity::kDebug, "below.floor", {});
  eventlog::emit(eventlog::Severity::kInfo, "flow.admitted",
                 {{"tuple", std::string("1.2.3.4:5 -> 6.7.8.9:10 tcp")},
                  {"flow_seq", std::uint64_t{7}},
                  {"early", true},
                  {"score", 0.25}});
  eventlog::close();
  EXPECT_FALSE(eventlog::enabled());

  std::istringstream lines(read_file(path));
  std::string line;
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++records;
    const json::Value record = json::parse(line);
    EXPECT_EQ(record.at("severity").as_string(), "info");
    EXPECT_EQ(record.at("event").as_string(), "flow.admitted");
    EXPECT_EQ(record.at("flow_seq").as_uint(), 7u);
    EXPECT_TRUE(record.at("early").as_bool());
    EXPECT_GE(record.at("ts_us").as_number(), 0.0);
  }
  EXPECT_EQ(records, 1u);  // the kDebug event fell below the floor
}

TEST(EventLog, TokenBucketSuppressesFloodsButNeverWarnings) {
  const std::string path = temp_path("events_flood.jsonl");
  eventlog::Options options;
  options.tokens_per_second = 0.0;  // no refill: exactly `burst` tokens
  options.burst = 3.0;
  eventlog::open(path, options);
  for (int i = 0; i < 10; ++i) {
    eventlog::emit(eventlog::Severity::kInfo, "flood", {});
  }
  eventlog::emit(eventlog::Severity::kWarn, "always.logged", {});
  const std::uint64_t emitted = eventlog::emitted();
  const std::uint64_t suppressed = eventlog::suppressed();
  eventlog::close();

  EXPECT_EQ(emitted, 4u);  // 3 info through the bucket + the warning
  EXPECT_EQ(suppressed, 7u);

  // The record after the drops carries the suppressed count.
  std::istringstream lines(read_file(path));
  std::string line;
  bool saw_suppressed_marker = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const json::Value record = json::parse(line);
    if (const json::Value* n = record.find("suppressed")) {
      EXPECT_EQ(n->as_uint(), 7u);
      EXPECT_EQ(record.at("event").as_string(), "always.logged");
      saw_suppressed_marker = true;
    }
  }
  EXPECT_TRUE(saw_suppressed_marker);
}

TEST(StatsServer, ParsesHostPort) {
  const net::HostPort a = net::parse_host_port("127.0.0.1:9100");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 9100);
  const net::HostPort b = net::parse_host_port("localhost:0");
  EXPECT_EQ(b.host, "127.0.0.1");
  EXPECT_EQ(b.port, 0);
  EXPECT_THROW(net::parse_host_port("127.0.0.1"), InvalidArgument);
  EXPECT_THROW(net::parse_host_port(":80"), InvalidArgument);
  EXPECT_THROW(net::parse_host_port("127.0.0.1:"), InvalidArgument);
  EXPECT_THROW(net::parse_host_port("127.0.0.1:70000"), InvalidArgument);
  EXPECT_THROW(net::parse_host_port("127.0.0.1:8x0"), InvalidArgument);
  EXPECT_THROW(net::parse_host_port("not-a-host:80"), InvalidArgument);
}

TEST(StatsServer, ServesRegisteredHandlers) {
  net::StatsServer server;
  server.handle("/ping", [](const net::HttpRequest& request) {
    net::HttpResponse response;
    response.body = "pong:" + request.path;
    return response;
  });
  server.handle("/boom", [](const net::HttpRequest&) -> net::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start("127.0.0.1", 0);
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const net::HttpResult ok =
      net::http_get("127.0.0.1", server.port(), "/ping");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "pong:/ping");

  const net::HttpResult query =
      net::http_get("127.0.0.1", server.port(), "/ping?x=1");
  EXPECT_EQ(query.status, 200);  // query strings are stripped before match

  const net::HttpResult missing =
      net::http_get("127.0.0.1", server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  const net::HttpResult error =
      net::http_get("127.0.0.1", server.port(), "/boom");
  EXPECT_EQ(error.status, 500);
  EXPECT_NE(error.body.find("handler exploded"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_THROW(net::http_get("127.0.0.1", server.port(), "/ping"), IoError);
}

// Small watermark so 100-ish-packet corpus flows have capacity for it
// (the default parameters need far longer flows).
WatermarkParams small_watermark() {
  WatermarkParams watermark;
  watermark.bits = 8;
  watermark.redundancy = 2;
  return watermark;
}

stream::StreamOptions small_engine_options(std::size_t shards) {
  stream::StreamOptions options;
  options.table.shards = shards;
  options.batch_size = 64;
  options.threads = 2;
  return options;
}

struct VerdictDigest {
  std::vector<std::string> lines;
};

VerdictDigest run_corpus(const experiment::StreamCorpus& corpus,
                         std::size_t shards, bool telemetry_on,
                         const std::string& event_log_path) {
  stream::StreamEngine engine(corpus.upstreams, CorrelatorConfig{},
                              small_engine_options(shards));
  stream::StreamTelemetry telemetry(engine);
  if (telemetry_on) {
    eventlog::open(event_log_path);
    telemetry.start("127.0.0.1", 0);
  }
  for (const auto& packet : corpus.packets) engine.ingest(packet);
  engine.finish();
  if (telemetry_on) {
    // Scrape everything once while the engine object is still alive.
    EXPECT_EQ(
        net::http_get("127.0.0.1", telemetry.port(), "/metrics").status, 200);
    EXPECT_EQ(
        net::http_get("127.0.0.1", telemetry.port(), "/statusz").status, 200);
    telemetry.stop();
    eventlog::close();
  }
  VerdictDigest digest;
  for (const auto& verdict : engine.drain_verdicts()) {
    digest.lines.push_back(
        verdict.tuple.to_string() + "#" + std::to_string(verdict.flow_seq) +
        " up" + std::to_string(verdict.upstream) + " " +
        to_string(verdict.kind) + (verdict.early ? " early" : "") + " h" +
        std::to_string(verdict.result.hamming) + " c" +
        std::to_string(verdict.result.cost));
  }
  return digest;
}

TEST(StreamTelemetry, EndpointsDescribeALiveEngine) {
  metrics::reset();
  experiment::StreamCorpusConfig config;
  config.watermarked_flows = 1;
  config.decoy_flows = 3;
  config.packets_per_flow = 200;
  config.watermark = small_watermark();
  const experiment::StreamCorpus corpus = experiment::make_stream_corpus(config);

  stream::StreamEngine engine(corpus.upstreams, CorrelatorConfig{},
                              small_engine_options(4));
  stream::StreamTelemetry telemetry(engine);
  telemetry.start("127.0.0.1", 0);
  for (const auto& packet : corpus.packets) engine.ingest(packet);
  engine.finish();

  const net::HttpResult statusz =
      net::http_get("127.0.0.1", telemetry.port(), "/statusz");
  ASSERT_EQ(statusz.status, 200);
  const json::Value doc = json::parse(statusz.body);
  EXPECT_EQ(doc.at("packets_ingested").as_uint(), corpus.packets.size());
  EXPECT_TRUE(doc.at("finished").as_bool());
  EXPECT_EQ(doc.at("upstreams").as_uint(), 1u);
  EXPECT_EQ(doc.at("shards").as_array().size(), 4u);
  std::uint64_t shard_flows = 0;
  for (const json::Value& shard : doc.at("shards").as_array()) {
    shard_flows += shard.at("flows").as_uint();
  }
  EXPECT_EQ(shard_flows, doc.at("flows_live").as_uint());
  const json::Value& verdicts = doc.at("verdicts");
  EXPECT_EQ(verdicts.at("total").as_uint(),
            verdicts.at("positive").as_uint() +
                verdicts.at("negative").as_uint() +
                verdicts.at("evicted").as_uint() +
                verdicts.at("degraded").as_uint());
  EXPECT_GT(verdicts.at("total").as_uint(), 0u);
  const auto& hottest = doc.at("hottest").as_array();
  ASSERT_FALSE(hottest.empty());
  // Ranked by buffered packets, descending.
  for (std::size_t i = 1; i < hottest.size(); ++i) {
    EXPECT_GE(hottest[i - 1].at("buffered").as_uint(),
              hottest[i].at("buffered").as_uint());
  }

  const net::HttpResult healthz =
      net::http_get("127.0.0.1", telemetry.port(), "/healthz");
  ASSERT_EQ(healthz.status, 200);
  const json::Value health = json::parse(healthz.body);
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_GE(health.at("uptime_s").as_number(), 0.0);

  const net::HttpResult prom =
      net::http_get("127.0.0.1", telemetry.port(), "/metrics");
  ASSERT_EQ(prom.status, 200);
  EXPECT_NE(prom.body.find("# TYPE sscor_stream_packets_ingested_total"),
            std::string::npos);
  EXPECT_NE(prom.body.find("sscor_stream_flows_live "), std::string::npos);
  EXPECT_NE(prom.body.find("sscor_stream_shard_0_flows "),
            std::string::npos);
  // A second scrape has a baseline, so rate gauges appear.
  const net::HttpResult prom2 =
      net::http_get("127.0.0.1", telemetry.port(), "/metrics");
  EXPECT_NE(prom2.body.find("_per_second "), std::string::npos);

  telemetry.stop();
  metrics::reset();
}

TEST(StreamTelemetry, HealthzReportsOverloadAfterPressureEviction) {
  metrics::reset();
  experiment::StreamCorpusConfig config;
  config.watermarked_flows = 1;
  config.decoy_flows = 5;
  config.packets_per_flow = 120;
  config.watermark = small_watermark();
  const experiment::StreamCorpus corpus = experiment::make_stream_corpus(config);

  stream::StreamOptions options = small_engine_options(1);
  options.table.max_flows = 2;  // guarantees flow-count evictions
  stream::StreamEngine engine(corpus.upstreams, CorrelatorConfig{}, options);
  stream::StreamTelemetry telemetry(engine);
  for (const auto& packet : corpus.packets) engine.ingest(packet);
  engine.finish();

  const json::Value health = json::parse(telemetry.healthz_json());
  EXPECT_EQ(health.at("status").as_string(), "overloaded");
  EXPECT_GE(health.at("seconds_since_pressure").as_number(), 0.0);
  EXPECT_TRUE(telemetry.overloaded());
  metrics::reset();
}

TEST(StreamTelemetry, ObserverOnlyVerdictParity) {
  experiment::StreamCorpusConfig config;
  config.watermarked_flows = 2;
  config.decoy_flows = 4;
  config.packets_per_flow = 150;
  config.watermark = small_watermark();
  const experiment::StreamCorpus corpus = experiment::make_stream_corpus(config);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    metrics::reset();
    const VerdictDigest off = run_corpus(corpus, shards, false, "");
    metrics::reset();
    const VerdictDigest on = run_corpus(
        corpus, shards, true,
        temp_path("parity_" + std::to_string(shards) + ".jsonl"));
    EXPECT_EQ(off.lines, on.lines)
        << "telemetry changed verdicts at shards=" << shards;
    ASSERT_FALSE(off.lines.empty());
  }
  metrics::reset();
}

}  // namespace
}  // namespace sscor
