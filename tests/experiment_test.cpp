// Tests for the experiment harness: dataset construction, evaluation, and
// the figure sweep driver.

#include <gtest/gtest.h>

#include "sscor/experiment/dataset.hpp"
#include "sscor/experiment/evaluation.hpp"
#include "sscor/experiment/sweep.hpp"

namespace sscor::experiment {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.flows = 6;
  config.packets_per_flow = 600;
  config.fp_pairs = 10;
  return config;
}

TEST(Dataset, BuildIsDeterministic) {
  const auto config = tiny_config();
  const Dataset a = Dataset::build(config);
  const Dataset b = Dataset::build(config);
  ASSERT_EQ(a.size(), config.flows);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.upstream(i).flow.timestamps(),
              b.upstream(i).flow.timestamps());
    EXPECT_EQ(a.upstream(i).watermark, b.upstream(i).watermark);
  }
  auto different = config;
  different.master_seed += 1;
  const Dataset c = Dataset::build(different);
  EXPECT_NE(a.upstream(0).flow.timestamps(),
            c.upstream(0).flow.timestamps());
}

TEST(Dataset, FlowsDifferAndOverlapInTime) {
  const Dataset dataset = Dataset::build(tiny_config());
  for (std::size_t i = 1; i < dataset.size(); ++i) {
    EXPECT_NE(dataset.upstream(i).flow.timestamps(),
              dataset.upstream(0).flow.timestamps());
    EXPECT_LT(dataset.upstream(i).flow.start_time(), seconds(std::int64_t{1}));
  }
}

TEST(Dataset, DownstreamPropertiesAndDeterminism) {
  const Dataset dataset = Dataset::build(tiny_config());
  const auto delta = seconds(std::int64_t{3});
  const Flow d1 = dataset.downstream(0, delta, 1.5);
  const Flow d2 = dataset.downstream(0, delta, 1.5);
  EXPECT_EQ(d1.timestamps(), d2.timestamps());

  const Flow& upstream = dataset.upstream(0).flow;
  EXPECT_GT(d1.size(), upstream.size());  // chaff added
  // Real packets keep bounded delays in upstream order.
  std::size_t real = 0;
  for (const auto& p : d1.packets()) {
    if (p.is_chaff) continue;
    const DurationUs delay = p.timestamp - upstream.timestamp(real);
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, delta);
    ++real;
  }
  EXPECT_EQ(real, upstream.size());

  // No chaff at rate 0.
  EXPECT_EQ(dataset.downstream(0, delta, 0.0).size(), upstream.size());
}

TEST(Dataset, FpPairsValidAndExhaustiveWhenAsked) {
  const Dataset dataset = Dataset::build(tiny_config());
  const auto sampled = dataset.sample_fp_pairs(10);
  EXPECT_EQ(sampled.size(), 10u);
  for (const auto& [i, j] : sampled) {
    EXPECT_NE(i, j);
    EXPECT_LT(i, dataset.size());
    EXPECT_LT(j, dataset.size());
  }
  const auto all = dataset.sample_fp_pairs(10'000);
  EXPECT_EQ(all.size(), dataset.size() * (dataset.size() - 1));
}

TEST(Dataset, TcplibCorpus) {
  auto config = tiny_config();
  config.corpus = Corpus::kTcplib;
  const Dataset dataset = Dataset::build(config);
  EXPECT_EQ(dataset.size(), config.flows);
  EXPECT_EQ(dataset.upstream(0).flow.size(), config.packets_per_flow);
}

TEST(Evaluation, PaperDetectorsLineUp) {
  const auto detectors =
      paper_detectors(tiny_config(), seconds(std::int64_t{7}));
  ASSERT_EQ(detectors.size(), 5u);
  EXPECT_EQ(detectors[0]->name(), "Greedy");
  EXPECT_EQ(detectors[1]->name(), "Greedy+");
  EXPECT_EQ(detectors[2]->name(), "Greedy*");
  EXPECT_EQ(detectors[3]->name(), "BasicWM");
  EXPECT_EQ(detectors[4]->name(), "Zhang");
}

TEST(Evaluation, EasyPointHasHighDetectionAndSaneRates) {
  const auto config = tiny_config();
  const Dataset dataset = Dataset::build(config);
  const auto detectors = paper_detectors(config, seconds(std::int64_t{1}));
  EvaluationRequest request;
  request.max_delay = seconds(std::int64_t{1});
  request.chaff_rate = 0.5;
  const auto metrics = evaluate_point(dataset, detectors, request);
  ASSERT_EQ(metrics.size(), detectors.size());
  for (const auto& m : metrics) {
    EXPECT_GE(m.detection_rate, 0.0);
    EXPECT_LE(m.detection_rate, 1.0);
    EXPECT_GE(m.false_positive_rate, 0.0);
    EXPECT_LE(m.false_positive_rate, 1.0);
  }
  // Greedy+ must nail the easy point (tiny perturbation, light chaff).
  EXPECT_GE(metrics[1].detection_rate, 0.8);
  EXPECT_GT(metrics[1].cost_correlated.mean(), 0.0);
}

TEST(Sweep, ProducesOneRowPerAxisValue) {
  auto config = tiny_config();
  config.flows = 4;
  config.fp_pairs = 4;
  config.packets_per_flow = 500;
  SweepSpec spec;
  spec.metric = Metric::kDetectionRate;
  spec.axis = SweepAxis::kChaffRate;
  spec.fixed_delay = seconds(std::int64_t{2});
  spec.chaff_rates = {0.0, 1.0};
  std::size_t progress_calls = 0;
  const TextTable table =
      run_sweep(config, spec, [&](std::size_t, std::size_t,
                                  const std::string&) { ++progress_calls; });
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 6u);  // axis + 5 detectors
  EXPECT_EQ(progress_calls, 2u);

  SweepSpec delays;
  delays.metric = Metric::kCostUncorrelated;
  delays.axis = SweepAxis::kMaxDelay;
  delays.fixed_chaff = 1.0;
  delays.max_delays = {0, seconds(std::int64_t{1})};
  const TextTable table2 = run_sweep(config, delays);
  EXPECT_EQ(table2.rows(), 2u);
}

TEST(Sweep, MetricNames) {
  EXPECT_EQ(to_string(Metric::kDetectionRate), "detection rate");
  EXPECT_NE(to_string(Metric::kCostCorrelated),
            to_string(Metric::kCostUncorrelated));
}

}  // namespace
}  // namespace sscor::experiment
