// Unit tests for sscor/net: byte order, checksum, headers, five-tuple.

#include <gtest/gtest.h>

#include <array>

#include "sscor/net/byte_order.hpp"
#include "sscor/net/checksum.hpp"
#include "sscor/net/five_tuple.hpp"
#include "sscor/net/headers.hpp"
#include "sscor/util/error.hpp"

namespace sscor::net {
namespace {

TEST(ByteOrder, RoundTrip16) {
  std::array<std::uint8_t, 2> buf{};
  store_be16(buf, 0xabcd);
  EXPECT_EQ(buf[0], 0xab);
  EXPECT_EQ(buf[1], 0xcd);
  EXPECT_EQ(load_be16(buf), 0xabcd);
  store_le16(buf, 0xabcd);
  EXPECT_EQ(buf[0], 0xcd);
  EXPECT_EQ(load_le16(buf), 0xabcd);
}

TEST(ByteOrder, RoundTrip32) {
  std::array<std::uint8_t, 4> buf{};
  store_be32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
  store_le32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
}

TEST(Checksum, Rfc1071Example) {
  // The classic example from RFC 1071 §3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> ddf0 + 2 = ddf2 -> ~ = 220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  // Words: 1234, 5600 -> sum 6834 -> ~ = 97cb.
  EXPECT_EQ(internet_checksum(data), 0x97cb);
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(data).first(4));
  acc.add(std::span<const std::uint8_t>(data).subspan(4));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Ipv4Address, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("10.1.2.3");
  EXPECT_EQ(addr.value, 0x0a010203u);
  EXPECT_EQ(addr.to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4Address::from_octets(255, 255, 255, 255).value, 0xffffffffu);
  EXPECT_THROW(Ipv4Address::parse("10.1.2"), InvalidArgument);
  EXPECT_THROW(Ipv4Address::parse("10.1.2.300"), InvalidArgument);
  EXPECT_THROW(Ipv4Address::parse("10.1.2.3.4"), InvalidArgument);
  EXPECT_THROW(Ipv4Address::parse("nonsense"), InvalidArgument);
}

TEST(FiveTuple, ReversedAndEquality) {
  const FiveTuple t{Ipv4Address::parse("1.2.3.4"),
                    Ipv4Address::parse("5.6.7.8"), 1000, 22,
                    IpProtocol::kTcp};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip.to_string(), "5.6.7.8");
  EXPECT_EQ(r.src_port, 22);
  EXPECT_EQ(r.reversed(), t);
  EXPECT_NE(t, r);
}

TEST(FiveTuple, HashDistinguishesDirections) {
  const FiveTuple t{Ipv4Address::parse("1.2.3.4"),
                    Ipv4Address::parse("5.6.7.8"), 1000, 22,
                    IpProtocol::kTcp};
  FiveTupleHash hash;
  EXPECT_NE(hash(t), hash(t.reversed()));
  EXPECT_EQ(hash(t), hash(t));
}

TEST(Headers, EncodeParseRoundTrip) {
  const FiveTuple tuple{Ipv4Address::parse("192.168.0.1"),
                        Ipv4Address::parse("10.0.0.2"), 40000, 22,
                        IpProtocol::kTcp};
  const auto bytes = encode_tcp_packet(tuple, 1234, 777, kTcpAck | kTcpPsh,
                                       48);
  ASSERT_EQ(bytes.size(), 20u + 20u + 48u);
  const auto parsed = parse_tcp_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple(), tuple);
  EXPECT_EQ(parsed->tcp.seq, 1234u);
  EXPECT_EQ(parsed->tcp.ack, 777u);
  EXPECT_EQ(parsed->tcp.flags, kTcpAck | kTcpPsh);
  EXPECT_EQ(parsed->payload.size(), 48u);
  EXPECT_EQ(parsed->ip.ttl, 64);
}

TEST(Headers, ChecksumsAreValid) {
  const FiveTuple tuple{Ipv4Address::parse("1.1.1.1"),
                        Ipv4Address::parse("2.2.2.2"), 5555, 23,
                        IpProtocol::kTcp};
  auto bytes = encode_tcp_packet(tuple, 1, 1, kTcpAck, 13);
  EXPECT_TRUE(verify_ipv4_checksum(bytes));
  EXPECT_TRUE(verify_tcp_checksum(bytes));
  // Corrupt one payload byte: TCP checksum must fail, IP stays valid.
  bytes[45] ^= 0xff;
  EXPECT_TRUE(verify_ipv4_checksum(bytes));
  EXPECT_FALSE(verify_tcp_checksum(bytes));
  // Corrupt an IP header byte: IP checksum must fail.
  bytes[8] ^= 0xff;
  EXPECT_FALSE(verify_ipv4_checksum(bytes));
}

TEST(Headers, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_tcp_packet({}).has_value());
  std::vector<std::uint8_t> short_packet(10, 0);
  EXPECT_FALSE(parse_tcp_packet(short_packet).has_value());

  const FiveTuple tuple{Ipv4Address::parse("1.1.1.1"),
                        Ipv4Address::parse("2.2.2.2"), 1, 2,
                        IpProtocol::kTcp};
  auto bytes = encode_tcp_packet(tuple, 0, 0, 0, 4);
  // Not IPv4.
  auto v6 = bytes;
  v6[0] = 0x65;
  EXPECT_FALSE(parse_tcp_packet(v6).has_value());
  // Not TCP.
  auto udp = bytes;
  udp[9] = 17;
  EXPECT_FALSE(parse_tcp_packet(udp).has_value());
  // Truncated buffer.
  auto truncated = bytes;
  truncated.resize(30);
  EXPECT_FALSE(parse_tcp_packet(truncated).has_value());
}

TEST(Headers, EncodeRejectsOversizedPayload) {
  const FiveTuple tuple{Ipv4Address::parse("1.1.1.1"),
                        Ipv4Address::parse("2.2.2.2"), 1, 2,
                        IpProtocol::kTcp};
  EXPECT_THROW(encode_tcp_packet(tuple, 0, 0, 0, 70000),
               sscor::InvalidArgument);
}

}  // namespace
}  // namespace sscor::net
