// Tests for the baseline detectors: the basic watermark scheme, the Zhang
// passive-matching reconstruction, ON/OFF, and deviation-based correlation.

#include <gtest/gtest.h>

#include "sscor/baselines/basic_watermark.hpp"
#include "sscor/baselines/deviation.hpp"
#include "sscor/baselines/onoff.hpp"
#include "sscor/baselines/zhang_passive.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/watermark/embedder.hpp"

namespace sscor {
namespace {

WatermarkedFlow make_marked(std::uint64_t seed, std::size_t packets = 1000) {
  const traffic::InteractiveSessionModel model;
  const Flow flow = model.generate(packets, 0, mix_seeds(seed, 1));
  Rng rng(mix_seeds(seed, 2));
  WatermarkParams params;
  const Watermark wm = Watermark::random(params.bits, rng);
  const Embedder embedder(params, mix_seeds(seed, 3));
  return embedder.embed(flow, wm);
}

TEST(BasicWatermark, DetectsPerturbedFlowButNotChaffed) {
  const BasicWatermarkDetector detector(7);
  int detected_perturbed = 0;
  int detected_chaffed = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const auto marked = make_marked(100 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{7}),
                                              200 + t);
    const Flow perturbed = perturber.apply(marked.flow);
    detected_perturbed += detector.detect(marked, perturbed).correlated;

    const traffic::PoissonChaffInjector chaff(2.0, 300 + t);
    detected_chaffed += detector.detect(marked, chaff.apply(perturbed))
                            .correlated;
  }
  EXPECT_GE(detected_perturbed, 8) << "robust to bounded perturbation";
  EXPECT_LE(detected_chaffed, 2) << "chaff destroys positional decoding";
}

TEST(BasicWatermark, ShortFlowIsNegative) {
  const auto marked = make_marked(7);
  const BasicWatermarkDetector detector(7);
  const Flow stub = Flow::from_timestamps(std::vector<TimeUs>{1, 2, 3});
  const auto outcome = detector.detect(marked, stub);
  EXPECT_FALSE(outcome.correlated);
}

TEST(ZhangPassive, IdenticalFlowsHaveZeroDeviation) {
  const auto marked = make_marked(11);
  ZhangPassiveParams params;
  const auto r = zhang_passive_correlate(marked.flow, marked.flow, params);
  EXPECT_TRUE(r.correlated);
  ASSERT_TRUE(r.smallest_deviation.has_value());
  EXPECT_LE(*r.smallest_deviation, millis(1));
  EXPECT_GT(r.cost, 0u);
}

TEST(ZhangPassive, ConstantShiftWithinBoundCorrelates) {
  const auto marked = make_marked(13);
  ZhangPassiveParams params;
  const Flow shifted = marked.flow.shifted(seconds(std::int64_t{5}));
  EXPECT_TRUE(
      zhang_passive_correlate(marked.flow, shifted, params).correlated);
}

TEST(ZhangPassive, ShiftBeyondMaxDelayDoesNot) {
  const auto marked = make_marked(17);
  ZhangPassiveParams params;
  const Flow shifted = marked.flow.shifted(seconds(std::int64_t{30}));
  EXPECT_FALSE(
      zhang_passive_correlate(marked.flow, shifted, params).correlated);
}

TEST(ZhangPassive, FewerDownstreamPacketsThanTolerated) {
  ZhangPassiveParams params;
  params.skip_tolerance = 0.0;
  const Flow up = Flow::from_timestamps(std::vector<TimeUs>{0, 100, 200});
  const Flow down = Flow::from_timestamps(std::vector<TimeUs>{0, 100});
  const auto r = zhang_passive_correlate(up, down, params);
  EXPECT_FALSE(r.correlated);
  EXPECT_FALSE(r.smallest_deviation.has_value());
}

TEST(ZhangPassive, SkipToleranceForgivesMissingPackets) {
  ZhangPassiveParams params;
  params.max_delay = millis(100);
  params.deviation_threshold = millis(50);
  params.skip_tolerance = 0.4;
  // Upstream has 5 packets; downstream lost one entirely.
  const Flow up = Flow::from_timestamps(
      std::vector<TimeUs>{0, seconds(std::int64_t{10}),
                          seconds(std::int64_t{20}),
                          seconds(std::int64_t{30}),
                          seconds(std::int64_t{40})});
  const Flow down = Flow::from_timestamps(
      std::vector<TimeUs>{10, seconds(std::int64_t{10}) + 10,
                          seconds(std::int64_t{30}) + 10,
                          seconds(std::int64_t{40}) + 10});
  EXPECT_TRUE(zhang_passive_correlate(up, down, params).correlated);
  params.skip_tolerance = 0.0;
  EXPECT_FALSE(zhang_passive_correlate(up, down, params).correlated);
}

TEST(ZhangPassive, DetectsPerturbedChaffedDownstream) {
  int detected = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const auto marked = make_marked(500 + t);
    const traffic::UniformPerturber perturber(seconds(std::int64_t{4}),
                                              600 + t);
    const traffic::PoissonChaffInjector chaff(2.0, 700 + t);
    const Flow down = chaff.apply(perturber.apply(marked.flow));
    ZhangPassiveParams params;
    params.max_delay = seconds(std::int64_t{4});
    detected += zhang_passive_correlate(marked.flow, down, params).correlated;
  }
  EXPECT_GE(detected, kTrials - 2);
}

TEST(OnOff, OffPeriodEnds) {
  const Flow flow = Flow::from_timestamps(std::vector<TimeUs>{
      0, millis(100), seconds(std::int64_t{2}), seconds(std::int64_t{2}) + millis(50),
      seconds(std::int64_t{10})});
  const auto ends = off_period_ends(flow, millis(500));
  EXPECT_EQ(ends, (std::vector<TimeUs>{seconds(std::int64_t{2}),
                                       seconds(std::int64_t{10})}));
}

TEST(OnOff, CorrelatedVsUncorrelated) {
  const traffic::InteractiveSessionModel model;
  OnOffParams params;
  params.coincidence_delta = millis(300);
  int correlated_hits = 0;
  int uncorrelated_hits = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const Flow a = model.generate(600, 0, 900 + t);
    const traffic::UniformPerturber perturber(millis(200), 1000 + t);
    const Flow downstream = perturber.apply(a);
    const Flow other = model.generate(600, 0, 2000 + t);
    correlated_hits += onoff_correlate(a, downstream, params).correlated;
    uncorrelated_hits += onoff_correlate(a, other, params).correlated;
  }
  EXPECT_GE(correlated_hits, kTrials - 1);
  // ON/OFF coincidence with a multi-second window is permissive; it only
  // needs to be clearly weaker on unrelated flows.
  EXPECT_LT(uncorrelated_hits, correlated_hits);
}

TEST(OnOff, TooFewOffPeriodsIsNegative) {
  const Flow steady = Flow::from_timestamps(
      std::vector<TimeUs>{0, 100, 200, 300, 400});
  OnOffParams params;
  EXPECT_FALSE(onoff_correlate(steady, steady, params).correlated);
}

TEST(Deviation, ShiftedCopyHasZeroDeviation) {
  const auto marked = make_marked(21);
  const Flow shifted = marked.flow.shifted(seconds(std::int64_t{3}));
  DeviationParams params;
  const auto r = deviation_correlate(marked.flow, shifted, params);
  EXPECT_TRUE(r.correlated);
  EXPECT_EQ(r.min_deviation, 0);
}

TEST(Deviation, UnrelatedFlowsExceedThreshold) {
  const traffic::InteractiveSessionModel model;
  const Flow a = model.generate(300, 0, 31);
  const Flow b = model.generate(400, 0, 32);
  DeviationParams params;
  params.deviation_threshold = millis(500);
  const auto r = deviation_correlate(a, b, params);
  EXPECT_FALSE(r.correlated);
}

TEST(Deviation, ImpossibleWhenDownstreamShorter) {
  const Flow a = Flow::from_timestamps(std::vector<TimeUs>{0, 1, 2});
  const Flow b = Flow::from_timestamps(std::vector<TimeUs>{0, 1});
  DeviationParams params;
  EXPECT_FALSE(deviation_correlate(a, b, params).correlated);
}

TEST(Detectors, NamesAreStable) {
  CorrelatorConfig cc;
  EXPECT_EQ(CorrelatorDetector(cc, Algorithm::kGreedyPlus).name(), "Greedy+");
  EXPECT_EQ(BasicWatermarkDetector(7).name(), "BasicWM");
  EXPECT_EQ(ZhangPassiveDetector(ZhangPassiveParams{}).name(), "Zhang");
  EXPECT_EQ(OnOffDetector(OnOffParams{}).name(), "OnOff");
  EXPECT_EQ(DeviationDetector(DeviationParams{}).name(), "YodaEtoh");
}

}  // namespace
}  // namespace sscor
