// Observability layer tests: JSON escaping, log-linear histograms, span
// recording/export, decode introspection, and the metrics integration.
//
// The JSONL determinism test runs real correlators through parallel_for at
// two thread counts and requires byte-identical exports; together with the
// concurrent-recording tests this binary is part of the TSan smoke set
// driven by tools/run_checks.sh.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <regex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sscor/correlation/correlator.hpp"
#include "sscor/correlation/robust.hpp"
#include "sscor/traffic/chaff.hpp"
#include "sscor/traffic/interactive_model.hpp"
#include "sscor/traffic/perturbation.hpp"
#include "sscor/util/histogram.hpp"
#include "sscor/util/json.hpp"
#include "sscor/util/metrics.hpp"
#include "sscor/util/parallel.hpp"
#include "sscor/util/trace.hpp"
#include "sscor/watermark/embedder.hpp"

namespace {

using namespace sscor;

// ---------------------------------------------------------------------------
// JSON emission helpers.

TEST(JsonTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "\"plain\"");
  EXPECT_EQ(json::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json::escape("\b\t\n\f\r"), "\"\\b\\t\\n\\f\\r\"");
  EXPECT_EQ(json::escape(std::string_view("\x01\x1f", 2)),
            "\"\\u0001\\u001f\"");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(json::escape("\xc3\xa9"), "\"\xc3\xa9\"");

  std::string out = "x=";
  json::append_escaped(out, "y");
  EXPECT_EQ(out, "x=\"y\"");
}

TEST(JsonTest, FormatsNumbersLocaleIndependently) {
  EXPECT_EQ(json::number(1.5, 2), "1.50");
  EXPECT_EQ(json::number(0.0, 3), "0.000");
  EXPECT_EQ(json::number(-2.25, 1), "-2.2");
  EXPECT_EQ(json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
}

// ---------------------------------------------------------------------------
// Histogram bucket layout.

TEST(HistogramTest, SingletonBucketsBelowFour) {
  for (std::uint64_t v = 0; v < metrics::kHistogramSubBuckets; ++v) {
    EXPECT_EQ(metrics::histogram_bucket_index(v), v);
    EXPECT_EQ(metrics::histogram_bucket_lower_bound(
                  static_cast<std::uint32_t>(v)),
              v);
  }
}

TEST(HistogramTest, BucketRoundTripAndMonotonicity) {
  // Reachable indices are 0..251: values < 4 map to singletons and the
  // highest power-of-two range (msb 63) ends at (63-1)*4 + 3 = 251.
  constexpr std::uint32_t kTopIndex = 251;
  for (std::uint32_t i = 0; i <= kTopIndex; ++i) {
    const std::uint64_t lower = metrics::histogram_bucket_lower_bound(i);
    EXPECT_EQ(metrics::histogram_bucket_index(lower), i) << "index " << i;
    if (i > 0) {
      EXPECT_GT(lower, metrics::histogram_bucket_lower_bound(i - 1));
    }
    if (i < kTopIndex) {
      // The value just below the next bucket still belongs to this one.
      const std::uint64_t next = metrics::histogram_bucket_lower_bound(i + 1);
      EXPECT_EQ(metrics::histogram_bucket_index(next - 1), i);
    }
  }
  EXPECT_EQ(metrics::histogram_bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            kTopIndex);
}

TEST(HistogramTest, BucketRelativeErrorIsAtMostAQuarter) {
  for (std::uint32_t i = metrics::kHistogramSubBuckets; i < 251; ++i) {
    const double lower =
        static_cast<double>(metrics::histogram_bucket_lower_bound(i));
    const double width =
        static_cast<double>(metrics::histogram_bucket_lower_bound(i + 1)) -
        lower;
    EXPECT_LE(width / lower, 0.25 + 1e-12) << "index " << i;
  }
}

TEST(HistogramTest, PercentilesReportBucketLowerBounds) {
  metrics::HistogramData data;
  // 96 is an exact bucket lower bound ((4+2)<<4), so the percentile is
  // exact rather than merely bucket-accurate.
  for (int i = 0; i < 90; ++i) data.record(2);
  for (int i = 0; i < 10; ++i) data.record(96);
  EXPECT_EQ(data.count, 100u);
  EXPECT_EQ(data.sum, 90u * 2 + 10u * 96);
  EXPECT_EQ(data.max, 96u);
  EXPECT_EQ(data.percentile(0.50), 2u);
  EXPECT_EQ(data.percentile(0.90), 2u);
  EXPECT_EQ(data.percentile(0.95), 96u);
  EXPECT_EQ(data.percentile(0.99), 96u);
  EXPECT_EQ(data.percentile(1.00), 96u);
  EXPECT_DOUBLE_EQ(data.mean(), 11.4);

  const metrics::HistogramData empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
}

TEST(HistogramTest, MergeIsAssociativeAndMatchesSerialRecording) {
  std::mt19937_64 rng(0x5eed);
  std::vector<std::uint64_t> values(3000);
  for (auto& v : values) {
    // Mix small and huge magnitudes so many bucket ranges participate.
    v = rng() >> (rng() % 60);
  }

  metrics::HistogramData serial;
  for (const auto v : values) serial.record(v);

  metrics::HistogramData a;
  metrics::HistogramData b;
  metrics::HistogramData c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(values[i]);
  }

  metrics::HistogramData left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  metrics::HistogramData bc = b;     // a + (b + c)
  bc.merge(c);
  metrics::HistogramData right = a;
  right.merge(bc);

  EXPECT_EQ(left.buckets, serial.buckets);
  EXPECT_EQ(right.buckets, serial.buckets);
  EXPECT_EQ(left.count, serial.count);
  EXPECT_EQ(right.sum, serial.sum);
  EXPECT_EQ(left.max, serial.max);

  // The atomic registry histogram agrees with the plain accumulator.
  metrics::Histogram atomic;
  atomic.merge(a);
  atomic.merge(b);
  atomic.merge(c);
  const metrics::HistogramData snap = atomic.snapshot();
  EXPECT_EQ(snap.buckets, serial.buckets);
  EXPECT_EQ(snap.count, serial.count);
  EXPECT_EQ(snap.sum, serial.sum);
  EXPECT_EQ(snap.max, serial.max);
}

TEST(HistogramTest, ConcurrentRecordingKeepsExactTotals) {
  metrics::Histogram hist;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(t * 1000 + i % 100);
      }
    });
  }
  for (auto& w : workers) w.join();
  const metrics::HistogramData snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += t * 1000 + i % 100;
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, 3000u + 99u);
}

// ---------------------------------------------------------------------------
// Spans.  Only meaningful when the macro is compiled in.

#if !defined(SSCOR_TRACE_DISABLED)

TEST(SpanTest, DisabledRecordsNothing) {
  trace::set_spans_enabled(false);
  trace::clear_spans();
  {
    TRACE_SPAN("span_test.disabled");
  }
  EXPECT_TRUE(trace::snapshot_spans().empty());
  EXPECT_EQ(trace::export_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST(SpanTest, RecordsNestingDepthAndThreadAttribution) {
  trace::clear_spans();
  trace::set_spans_enabled(true);
  {
    TRACE_SPAN("span_test.outer");
    {
      TRACE_SPAN("span_test.inner");
    }
  }
  std::thread worker([] { TRACE_SPAN("span_test.worker"); });
  worker.join();
  trace::set_spans_enabled(false);

  const std::vector<trace::SpanEvent> events = trace::snapshot_spans();
  ASSERT_EQ(events.size(), 3u);
  std::uint32_t main_tid = 0;
  std::uint32_t worker_tid = 0;
  for (const auto& e : events) {
    const std::string name = e.name;
    if (name == "span_test.outer") {
      EXPECT_EQ(e.depth, 0u);
      main_tid = e.tid;
    } else if (name == "span_test.inner") {
      EXPECT_EQ(e.depth, 1u);
      EXPECT_EQ(e.tid, main_tid);
    } else if (name == "span_test.worker") {
      EXPECT_EQ(e.depth, 0u);
      worker_tid = e.tid;
    } else {
      FAIL() << "unexpected span " << name;
    }
    EXPECT_GE(e.duration_us, 0);
  }
  EXPECT_NE(main_tid, 0u);
  EXPECT_NE(worker_tid, 0u);
  EXPECT_NE(main_tid, worker_tid);
  trace::clear_spans();
}

TEST(SpanTest, RingOverflowDropsOldestAndCounts) {
  trace::clear_spans();
  trace::set_spans_enabled(true);
  constexpr std::uint64_t kExtra = 7;
  for (std::size_t i = 0; i < trace::kSpanRingCapacity + kExtra; ++i) {
    TRACE_SPAN("span_test.flood");
  }
  trace::set_spans_enabled(false);
  EXPECT_EQ(trace::dropped_spans(), kExtra);
  // Only this thread recorded since the clear, so exactly one full ring.
  std::size_t flood = 0;
  for (const auto& e : trace::snapshot_spans()) {
    flood += std::string(e.name) == "span_test.flood";
  }
  EXPECT_EQ(flood, trace::kSpanRingCapacity);
  trace::clear_spans();
  EXPECT_EQ(trace::dropped_spans(), 0u);
}

TEST(SpanTest, ConcurrentRecordingIsComplete) {
  trace::clear_spans();
  trace::set_spans_enabled(true);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansEach = 250;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::size_t i = 0; i < kSpansEach; ++i) {
        TRACE_SPAN("span_test.concurrent");
      }
    });
  }
  for (auto& w : workers) w.join();
  trace::set_spans_enabled(false);
  std::size_t seen = 0;
  for (const auto& e : trace::snapshot_spans()) {
    seen += std::string(e.name) == "span_test.concurrent";
  }
  EXPECT_EQ(seen, kThreads * kSpansEach);
  trace::clear_spans();
}

TEST(SpanTest, ChromeJsonGolden) {
  trace::clear_spans();
  trace::set_spans_enabled(true);
  {
    TRACE_SPAN("alpha");
    {
      TRACE_SPAN("beta");
    }
  }
  trace::set_spans_enabled(false);

  // Timestamps and thread ids vary run to run; everything else is exact.
  std::string got = trace::export_chrome_json();
  got = std::regex_replace(got, std::regex(R"("ts":\d+)"), "\"ts\":0");
  got = std::regex_replace(got, std::regex(R"("dur":\d+)"), "\"dur\":0");
  got = std::regex_replace(got, std::regex(R"("tid":\d+)"), "\"tid\":1");

  const std::string golden =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"alpha\",\"cat\":\"sscor\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":0,\"pid\":0,\"tid\":1,\"args\":{\"depth\":0}},\n"
      "{\"name\":\"beta\",\"cat\":\"sscor\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":0,\"pid\":0,\"tid\":1,\"args\":{\"depth\":1}}\n"
      "]}\n";
  EXPECT_EQ(got, golden);
  trace::clear_spans();
}

#endif  // !defined(SSCOR_TRACE_DISABLED)

// ---------------------------------------------------------------------------
// Decode introspection.

TEST(DecodeTraceTest, PairScopesNestAndRestore) {
  EXPECT_EQ(trace::current_pair_label(), "");
  {
    const trace::DecodePairScope outer("outer");
    EXPECT_EQ(trace::current_pair_label(), "outer");
    {
      const trace::DecodePairScope inner("inner");
      EXPECT_EQ(trace::current_pair_label(), "inner");
    }
    EXPECT_EQ(trace::current_pair_label(), "outer");
  }
  EXPECT_EQ(trace::current_pair_label(), "");
}

TEST(DecodeTraceTest, ExportsFixedFieldOrderSortedByPair) {
  trace::clear_decode();

  trace::DecodeRecord second;
  second.pair = "p2";
  second.algorithm = "Greedy";
  trace::record_decode(second);

  trace::DecodeRecord first;
  first.pair = "p\"1";  // exercises escaping in the pair label
  first.algorithm = "Greedy";
  first.correlated = true;
  first.hamming = 2;
  first.cost = 42;
  first.matching_complete = true;
  first.cost_bound_hit = false;
  first.bit_outcomes = "110-";
  first.upstream_packets = 10;
  first.downstream_packets = 12;
  first.excess_packets = 2;
  first.matched_upstream = 9;
  first.window_total = 30;
  first.window_max = 5;
  trace::record_decode(first);

  EXPECT_EQ(trace::decode_record_count(), 2u);
  const std::string jsonl = trace::export_decode_jsonl();
  const std::string expected_first =
      "{\"pair\":\"p\\\"1\",\"algorithm\":\"Greedy\",\"correlated\":true,"
      "\"hamming\":2,\"cost\":42,\"matching_complete\":true,"
      "\"cost_bound_hit\":false,\"bits\":\"110-\",\"up_packets\":10,"
      "\"down_packets\":12,\"excess_packets\":2,\"matched_upstream\":9,"
      "\"window_total\":30,\"window_max\":5}\n";
  // "p\"1" < "p2", so the later-recorded row sorts first.
  ASSERT_GE(jsonl.size(), expected_first.size());
  EXPECT_EQ(jsonl.substr(0, expected_first.size()), expected_first);
  EXPECT_NE(jsonl.find("\"pair\":\"p2\""), std::string::npos);
  trace::clear_decode();
  EXPECT_EQ(trace::decode_record_count(), 0u);
}

TEST(DecodeTraceTest, RecordInheritsThePairScopeLabel) {
  trace::clear_decode();
  {
    const trace::DecodePairScope scope("scoped-pair");
    trace::DecodeRecord record;
    record.algorithm = "Greedy";
    trace::record_decode(std::move(record));
  }
  const std::string jsonl = trace::export_decode_jsonl();
  EXPECT_NE(jsonl.find("\"pair\":\"scoped-pair\""), std::string::npos);
  trace::clear_decode();
}

namespace jsonl_determinism {

struct PairSet {
  std::vector<WatermarkedFlow> marked;
  std::vector<Flow> down;
};

PairSet make_pairs(std::size_t pairs, std::size_t packets) {
  const traffic::InteractiveSessionModel model;
  const Embedder embedder(WatermarkParams{}, 0xbeef);
  Rng rng(0x5151);
  PairSet set;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto seed = static_cast<std::uint64_t>(9000 + i);
    const Flow flow = model.generate(packets, 0, seed);
    set.marked.push_back(embedder.embed(flow, Watermark::random(24, rng)));
    const traffic::UniformPerturber perturber(seconds(std::int64_t{2}),
                                              seed + 17);
    const traffic::PoissonChaffInjector chaff(2.0, seed + 29);
    set.down.push_back(chaff.apply(perturber.apply(set.marked.back().flow)));
  }
  return set;
}

std::string run_pass(const PairSet& set, unsigned threads) {
  trace::clear_decode();
  trace::set_decode_enabled(true);
  const CorrelatorConfig config;
  const std::vector<Correlator> correlators = {
      Correlator(config, Algorithm::kGreedy),
      Correlator(config, Algorithm::kGreedyPlus),
      Correlator(config, Algorithm::kGreedyStar)};
  parallel_for(
      set.marked.size(),
      [&](std::size_t i) {
        char label[32];
        std::snprintf(label, sizeof(label), "pair=%04zu", i);
        const trace::DecodePairScope scope(label);
        for (const auto& c : correlators) {
          c.correlate(set.marked[i], set.down[i]);
        }
        run_greedy_plus_robust(set.marked[i].schedule,
                               set.marked[i].watermark, set.marked[i].flow,
                               set.down[i], config);
      },
      threads);
  trace::set_decode_enabled(false);
  std::string out = trace::export_decode_jsonl();
  trace::clear_decode();
  return out;
}

}  // namespace jsonl_determinism

TEST(DecodeTraceTest, JsonlIsByteIdenticalAcrossThreadCounts) {
  using jsonl_determinism::make_pairs;
  using jsonl_determinism::run_pass;
  const auto set = make_pairs(5, 800);
  const std::string serial = run_pass(set, 1);
  const std::string pooled = run_pass(set, 4);
  EXPECT_EQ(serial, pooled);

  // One row per (pair, detector): three correlators plus the robust run.
  std::size_t lines = 0;
  for (const char c : serial) lines += c == '\n';
  EXPECT_EQ(lines, set.marked.size() * 4);
  EXPECT_NE(serial.find("\"algorithm\":\"Greedy+robust\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics integration.

TEST(MetricsTest, ScopedTimerRecordsWhenUnwindingThroughAnException) {
  const std::uint64_t before = metrics::timer("trace_test.throw").count();
  try {
    const metrics::ScopedTimer timed("trace_test.throw");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(metrics::timer("trace_test.throw").count(), before + 1);
}

TEST(MetricsTest, RegistryHistogramsAppearWithPercentiles) {
  metrics::Histogram& hist = metrics::histogram("trace_test.hist");
  hist.reset();
  for (int i = 0; i < 90; ++i) hist.record(2);
  for (int i = 0; i < 10; ++i) hist.record(96);

  const metrics::Snapshot snap = metrics::snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "trace_test.hist") continue;
    found = true;
    EXPECT_EQ(h.data.count, 100u);
    EXPECT_EQ(h.data.percentile(0.50), 2u);
    EXPECT_EQ(h.data.percentile(0.95), 96u);
  }
  EXPECT_TRUE(found);

  const std::string table = snap.to_table().to_string();
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("trace_test.hist"), std::string::npos);

  const std::string json_out = snap.to_json();
  EXPECT_NE(json_out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json_out.find("\"trace_test.hist\": {\"count\": 100"),
            std::string::npos);
  EXPECT_NE(json_out.find("\"p50\": 2"), std::string::npos);
  EXPECT_NE(json_out.find("\"p95\": 96"), std::string::npos);
}

}  // namespace
