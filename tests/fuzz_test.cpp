// Tests for the differential-fuzzing subsystem: the checked-in regression
// replays, a fixed-budget fuzz smoke run, case determinism, the allocation
// guard, and the shrinker.
//
// SSCOR_CORPUS_DIR (a compile definition) points at tests/corpus/ in the
// source tree, where `sscor_fuzz --emit-corpus` keeps the seeds and the
// regression replay artifacts.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "sscor/fuzz/alloc_guard.hpp"
#include "sscor/fuzz/fuzzer.hpp"
#include "sscor/fuzz/generators.hpp"
#include "sscor/fuzz/oracles.hpp"
#include "sscor/fuzz/shrinker.hpp"
#include "sscor/util/rng.hpp"

namespace sscor::fuzz {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------------------------
// Regression replays: every historical bug's payload must pass on the fixed
// tree.  (Against the pre-fix tree each of these fails; that direction is
// exercised manually, not from CI.)

TEST(FuzzRegressions, CheckedInReplaysPassOnFixedTree) {
  std::size_t replayed = 0;
  for (const auto& entry : fs::directory_iterator(SSCOR_CORPUS_DIR)) {
    if (entry.path().extension() != ".replay") continue;
    const OracleResult result = replay_file(entry.path().string());
    EXPECT_TRUE(result.ok) << entry.path().filename().string() << ": "
                           << result.message;
    EXPECT_FALSE(result.skipped) << entry.path().filename().string();
    ++replayed;
  }
  // One artifact per historical bug: QIM boundary, pcap giant record,
  // pcapng require()-on-bad-input, flow-text trailing token and negative
  // size.
  EXPECT_GE(replayed, 5u);
}

TEST(FuzzRegressions, InMemoryCasesMatchTheirOracles) {
  auto oracles = make_default_oracles();
  for (const auto& regression : make_regression_cases()) {
    bool found = false;
    for (const auto& oracle : oracles) {
      if (oracle->name() != regression.oracle) continue;
      found = true;
      const OracleResult result = oracle->check(regression.payload);
      EXPECT_TRUE(result.ok) << regression.name << ": " << result.message;
      EXPECT_FALSE(result.skipped) << regression.name;
    }
    EXPECT_TRUE(found) << regression.name << " names unknown oracle "
                       << regression.oracle;
  }
}

// --------------------------------------------------------------------------
// Fixed-budget smoke run: a short deterministic fuzz session over all
// oracles (with the checked-in corpus seeds) finds nothing on a correct
// tree.

TEST(FuzzSmoke, ShortRunIsClean) {
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 240;  // 40 cases per oracle
  options.corpus_dir = SSCOR_CORPUS_DIR;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.executed, 240u);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << failure.oracle << " iteration " << failure.iteration
                  << ": " << failure.message;
  }
}

// --------------------------------------------------------------------------
// Determinism: a case is a pure function of the Rng handed to generate().

TEST(FuzzDeterminism, SameSeedSameCase) {
  for (const auto& oracle : make_default_oracles()) {
    Rng a(0xdecaf), b(0xdecaf);
    EXPECT_EQ(oracle->generate(a), oracle->generate(b)) << oracle->name();
  }
}

TEST(FuzzDeterminism, ReplayArtifactRoundTrips) {
  const std::vector<std::uint8_t> payload = {0x00, 0x41, 0xff, 0x0a, 0x7f};
  const std::string text =
      format_replay_artifact("reader_pcap", 9, 1234, payload);
  std::istringstream in(text);
  const ReplayCase parsed = parse_replay_artifact(in);
  EXPECT_EQ(parsed.oracle, "reader_pcap");
  EXPECT_EQ(parsed.seed, 9u);
  EXPECT_EQ(parsed.iteration, 1234u);
  EXPECT_EQ(parsed.payload, payload);
}

// --------------------------------------------------------------------------
// AllocationGuard: the budget enforcement the reader oracles rely on.
// Results are captured into locals and asserted outside the guard scope —
// a failing gtest assertion allocates, which a tripped guard would turn
// into a confusing secondary bad_alloc.

TEST(AllocGuard, TripsPastBudget) {
  bool threw = false;
  bool tripped = false;
  {
    AllocationGuard guard(1024);
    try {
      std::vector<char> big(std::size_t{1} << 16);
      (void)big;
    } catch (const std::bad_alloc&) {
      threw = true;
    }
    tripped = guard.tripped();
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(tripped);
}

TEST(AllocGuard, UnderBudgetIsInvisible) {
  std::size_t allocated = 0;
  bool tripped = true;
  {
    AllocationGuard guard(std::size_t{1} << 20);
    std::vector<char> small(1024);
    (void)small;
    allocated = guard.allocated_bytes();
    tripped = guard.tripped();
  }
  EXPECT_GE(allocated, 1024u);
  EXPECT_FALSE(tripped);
}

TEST(AllocGuard, GuardsNestIndependently) {
  bool inner_threw = false;
  bool inner_tripped = false;
  bool outer_threw = false;
  bool outer_tripped = true;
  {
    AllocationGuard outer(std::size_t{64} << 20);
    {
      AllocationGuard inner(512);
      try {
        std::vector<char> big(std::size_t{1} << 14);
        (void)big;
      } catch (const std::bad_alloc&) {
        inner_threw = true;
      }
      inner_tripped = inner.tripped();
    }
    // The inner trip must not poison the outer guard's scope.
    try {
      std::vector<char> fine(std::size_t{1} << 14);
      (void)fine;
    } catch (const std::bad_alloc&) {
      outer_threw = true;
    }
    outer_tripped = outer.tripped();
  }
  EXPECT_TRUE(inner_threw);
  EXPECT_TRUE(inner_tripped);
  EXPECT_FALSE(outer_threw);
  EXPECT_FALSE(outer_tripped);
}

// --------------------------------------------------------------------------
// Shrinker: line pass then byte pass reduces to a locally-minimal payload.

TEST(Shrinker, ReducesToTheFailingByte) {
  const std::string text = "aaaa\nbbXbb\ncccc\ndddd\n";
  std::vector<std::uint8_t> payload(text.begin(), text.end());
  const auto still_fails = [](const std::vector<std::uint8_t>& bytes) {
    for (const std::uint8_t b : bytes) {
      if (b == 'X') return true;
    }
    return false;
  };
  ShrinkStats stats;
  const std::vector<std::uint8_t> shrunk =
      shrink_payload(payload, still_fails, 500, &stats);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0], 'X');
  EXPECT_EQ(stats.initial_bytes, payload.size());
  EXPECT_EQ(stats.final_bytes, 1u);
  EXPECT_GT(stats.attempts, 0u);
}

TEST(Shrinker, KeepsPayloadWhenNothingRemovable) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto still_fails = [&](const std::vector<std::uint8_t>& bytes) {
    return bytes == payload;  // only the exact payload fails
  };
  EXPECT_EQ(shrink_payload(payload, still_fails, 200, nullptr), payload);
}

// --------------------------------------------------------------------------
// Generators: structural sanity of the adversarial-flow generator.

TEST(Generators, AdversarialFlowsAreWellFormed) {
  Rng rng(7);
  AdversarialFlowOptions options;
  options.quant_step = 50'000;
  options.min_ipd = 100'001;  // > 2*quant_step
  for (int round = 0; round < 20; ++round) {
    const Flow flow = generate_adversarial_flow(rng, options);
    ASSERT_GE(flow.size(), options.min_packets);
    ASSERT_LE(flow.size(), options.max_packets);
    for (std::size_t i = 1; i < flow.size(); ++i) {
      ASSERT_GE(flow.packet(i).timestamp - flow.packet(i - 1).timestamp,
                options.min_ipd);
    }
  }
}

}  // namespace
}  // namespace sscor::fuzz
